#include <cmath>
#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "src/baselines/gbdt.h"
#include "src/baselines/most_pop.h"
#include "src/baselines/odnet_recommender.h"
#include "src/data/fliggy_simulator.h"
#include "src/serving/ab_test.h"
#include "src/serving/batch_scorer.h"
#include "src/serving/evaluator.h"
#include "src/serving/ranking_service.h"
#include "src/serving/recall.h"
#include "src/tensor/compute_context.h"

namespace odnet {
namespace serving {
namespace {

struct Fixture {
  Fixture() : simulator(MakeConfig()), dataset(simulator.Generate()) {}
  static data::FliggyConfig MakeConfig() {
    data::FliggyConfig config;
    config.num_users = 200;
    config.num_cities = 30;
    config.seed = 29;
    return config;
  }
  data::FliggySimulator simulator;
  data::OdDataset dataset;
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

// ------------------------------------------------------------ Evaluator --

TEST(BuildCandidatesTest, RelevantFirstAndUnique) {
  Fixture& f = SharedFixture();
  const data::UserHistory& h = f.dataset.histories[0];
  std::vector<data::OdPair> candidates =
      BuildCandidates(h, f.dataset.num_cities, 20, 1);
  ASSERT_GE(candidates.size(), 2u);
  EXPECT_TRUE(candidates[0] == h.next_booking);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_NE(candidates[i].origin, candidates[i].destination);
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      EXPECT_FALSE(candidates[i] == candidates[j]);
    }
  }
}

TEST(BuildCandidatesTest, DeterministicPerSeed) {
  Fixture& f = SharedFixture();
  const data::UserHistory& h = f.dataset.histories[0];
  auto a = BuildCandidates(h, f.dataset.num_cities, 15, 9);
  auto b = BuildCandidates(h, f.dataset.num_cities, 15, 9);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}

TEST(BuildCandidatesTest, WeightedSamplingFavorsHeavyCities) {
  Fixture& f = SharedFixture();
  const data::UserHistory& h = f.dataset.histories[0];
  std::vector<double> weights(static_cast<size_t>(f.dataset.num_cities),
                              1e-6);
  weights[5] = 1000.0;  // city 5 dominates
  auto candidates = BuildCandidates(h, f.dataset.num_cities, 12, 2, &weights);
  int64_t fives = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].origin == 5 || candidates[i].destination == 5) ++fives;
  }
  EXPECT_GT(fives, 0);
}

TEST(EvaluatorTest, PerfectOracleGetsPerfectMetrics) {
  // An oracle scoring the true OD highest must get HR@1 = MRR = 1 and
  // AUC = 1.
  class Oracle : public baselines::OdRecommender {
   public:
    explicit Oracle(const data::OdDataset* dataset) : dataset_(dataset) {}
    std::string name() const override { return "Oracle"; }
    util::Status Fit(const data::OdDataset&) override {
      return util::Status::OK();
    }
    std::vector<baselines::OdScore> Score(
        const data::OdDataset& dataset,
        const std::vector<data::Sample>& samples) override {
      std::vector<baselines::OdScore> out;
      for (const data::Sample& s : samples) {
        const data::UserHistory& h =
            dataset.histories[static_cast<size_t>(s.user)];
        baselines::OdScore score;
        score.p_o = s.candidate.origin == h.next_booking.origin ? 0.9 : 0.1;
        score.p_d =
            s.candidate.destination == h.next_booking.destination ? 0.9 : 0.1;
        out.push_back(score);
      }
      return out;
    }
    const data::OdDataset* dataset_;
  };

  Fixture& f = SharedFixture();
  Oracle oracle(&f.dataset);
  EvalOptions options;
  options.num_candidates = 10;
  metrics::OdMetrics m = EvaluateOdRecommender(&oracle, f.dataset, options);
  EXPECT_DOUBLE_EQ(m.auc_o, 1.0);
  EXPECT_DOUBLE_EQ(m.auc_d, 1.0);
  EXPECT_DOUBLE_EQ(m.hr1, 1.0);
  EXPECT_DOUBLE_EQ(m.mrr10, 1.0);
}

TEST(EvaluatorTest, AntiOracleGetsZeroAuc) {
  class AntiOracle : public baselines::OdRecommender {
   public:
    std::string name() const override { return "Anti"; }
    util::Status Fit(const data::OdDataset&) override {
      return util::Status::OK();
    }
    std::vector<baselines::OdScore> Score(
        const data::OdDataset& dataset,
        const std::vector<data::Sample>& samples) override {
      std::vector<baselines::OdScore> out;
      for (const data::Sample& s : samples) {
        const data::UserHistory& h =
            dataset.histories[static_cast<size_t>(s.user)];
        baselines::OdScore score;
        score.p_o = s.candidate.origin == h.next_booking.origin ? 0.1 : 0.9;
        score.p_d =
            s.candidate.destination == h.next_booking.destination ? 0.1 : 0.9;
        out.push_back(score);
      }
      return out;
    }
  };
  Fixture& f = SharedFixture();
  AntiOracle anti;
  EvalOptions options;
  options.num_candidates = 10;
  metrics::OdMetrics m = EvaluateOdRecommender(&anti, f.dataset, options);
  EXPECT_DOUBLE_EQ(m.auc_o, 0.0);
  EXPECT_DOUBLE_EQ(m.hr1, 0.0);
}

TEST(EvaluatorTest, MaxTestUsersCapsQueries) {
  Fixture& f = SharedFixture();
  baselines::MostPop method;
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  EvalOptions options;
  options.num_candidates = 10;
  options.max_test_users = 3;
  metrics::OdMetrics m = EvaluateOdRecommender(&method, f.dataset, options);
  // With only 3 queries, hr1 is a multiple of 1/3.
  double scaled = m.hr1 * 3.0;
  EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
}

// --------------------------------------------------------------- Recall --

TEST(RecallTest, OriginsIncludeCurrentAndHistoricalCities) {
  Fixture& f = SharedFixture();
  RecallOptions options;
  CandidateRecall recall(&f.dataset, &f.simulator.atlas(), options);
  const data::UserHistory& h = f.dataset.histories[0];
  std::vector<int64_t> origins = recall.RecallOrigins(h);
  ASSERT_FALSE(origins.empty());
  EXPECT_EQ(origins[0], h.current_city);
  EXPECT_LE(static_cast<int64_t>(origins.size()), options.max_origins);
  std::set<int64_t> unique(origins.begin(), origins.end());
  EXPECT_EQ(unique.size(), origins.size());
}

TEST(RecallTest, DestinationsIncludeReturnPath) {
  // The return-ticket recall: historical origins appear as candidate
  // destinations.
  Fixture& f = SharedFixture();
  RecallOptions options;
  options.max_destinations = 30;
  CandidateRecall recall(&f.dataset, &f.simulator.atlas(), options);
  const data::UserHistory& h = f.dataset.histories[0];
  std::vector<int64_t> dests = recall.RecallDestinations(h);
  int64_t last_origin = h.long_term.back().od.origin;
  EXPECT_NE(std::find(dests.begin(), dests.end(), last_origin), dests.end());
}

TEST(RecallTest, PairsRespectRouteFilter) {
  Fixture& f = SharedFixture();
  RecallOptions options;
  options.route_exists = [&f](int64_t o, int64_t d) {
    return f.simulator.RouteExists(o, d);
  };
  CandidateRecall recall(&f.dataset, &f.simulator.atlas(), options);
  for (int64_t u = 0; u < 20; ++u) {
    for (const data::OdPair& od :
         recall.RecallPairs(f.dataset.histories[static_cast<size_t>(u)])) {
      EXPECT_TRUE(f.simulator.RouteExists(od.origin, od.destination));
      EXPECT_NE(od.origin, od.destination);
    }
  }
}

TEST(RecallTest, PairCapRespected) {
  Fixture& f = SharedFixture();
  RecallOptions options;
  options.max_pairs = 7;
  CandidateRecall recall(&f.dataset, &f.simulator.atlas(), options);
  EXPECT_LE(recall.RecallPairs(f.dataset.histories[0]).size(), 7u);
}

// -------------------------------------------------------- RankingService --

TEST(RankingServiceTest, ReturnsSortedTopK) {
  Fixture& f = SharedFixture();
  baselines::MostPop method;
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  RecallOptions options;
  CandidateRecall recall(&f.dataset, &f.simulator.atlas(), options);
  RankingService service(&method, &f.dataset, &recall);
  std::vector<RankedFlight> list = service.RecommendTopK(0, 5);
  EXPECT_LE(list.size(), 5u);
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_GE(list[i - 1].score, list[i].score);
  }
}

TEST(RankingServiceTest, RankCandidatesPreservesSet) {
  Fixture& f = SharedFixture();
  baselines::MostPop method;
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  RecallOptions options;
  CandidateRecall recall(&f.dataset, &f.simulator.atlas(), options);
  RankingService service(&method, &f.dataset, &recall);
  std::vector<data::OdPair> candidates{{1, 2}, {3, 4}, {5, 6}};
  std::vector<RankedFlight> ranked = service.RankCandidates(0, candidates);
  ASSERT_EQ(ranked.size(), 3u);
  std::set<std::pair<int64_t, int64_t>> in;
  std::set<std::pair<int64_t, int64_t>> out;
  for (const data::OdPair& od : candidates) in.insert({od.origin, od.destination});
  for (const RankedFlight& rf : ranked) out.insert({rf.od.origin, rf.od.destination});
  EXPECT_EQ(in, out);
}

// ---------------------------------------------------------------- A/B ----

TEST(AbTestTest, ProducesConsistentCounts) {
  Fixture& f = SharedFixture();
  baselines::MostPop pop;
  ASSERT_TRUE(pop.Fit(f.dataset).ok());
  AbTestOptions options;
  options.days = 3;
  options.users_per_method_per_day = 10;
  options.top_k = 4;
  AbTestResult result = RunAbTest({&pop}, f.simulator, f.dataset, options);
  ASSERT_EQ(result.methods.size(), 1u);
  const AbMethodResult& m = result.methods[0];
  EXPECT_EQ(m.method, "MostPop");
  EXPECT_EQ(m.daily_ctr.size(), 3u);
  EXPECT_EQ(m.impressions, 3 * 10 * 4);
  EXPECT_GE(m.clicks, 0);
  EXPECT_LE(m.clicks, m.impressions);
  EXPECT_NEAR(m.overall_ctr,
              static_cast<double>(m.clicks) /
                  static_cast<double>(m.impressions),
              1e-12);
}

TEST(AbTestTest, OracleBeatsRandomRanker) {
  // A ranker that knows the user's next booking must earn a higher CTR
  // than one that scores uniformly at random.
  class IntentOracle : public baselines::OdRecommender {
   public:
    std::string name() const override { return "IntentOracle"; }
    util::Status Fit(const data::OdDataset&) override {
      return util::Status::OK();
    }
    std::vector<baselines::OdScore> Score(
        const data::OdDataset& dataset,
        const std::vector<data::Sample>& samples) override {
      std::vector<baselines::OdScore> out;
      for (const data::Sample& s : samples) {
        const data::UserHistory& h =
            dataset.histories[static_cast<size_t>(s.user)];
        double hit = s.candidate == h.next_booking ? 0.99 : 0.01;
        out.push_back(baselines::OdScore{hit, hit});
      }
      return out;
    }
  };
  class RandomRanker : public baselines::OdRecommender {
   public:
    std::string name() const override { return "Random"; }
    util::Status Fit(const data::OdDataset&) override {
      return util::Status::OK();
    }
    std::vector<baselines::OdScore> Score(
        const data::OdDataset&,
        const std::vector<data::Sample>& samples) override {
      std::vector<baselines::OdScore> out;
      for (size_t i = 0; i < samples.size(); ++i) {
        out.push_back(baselines::OdScore{rng_.UniformDouble(),
                                         rng_.UniformDouble()});
      }
      return out;
    }
    util::Rng rng_{77};
  };

  Fixture& f = SharedFixture();
  IntentOracle oracle;
  RandomRanker random;
  AbTestOptions options;
  options.days = 5;
  options.users_per_method_per_day = 40;
  AbTestResult result =
      RunAbTest({&oracle, &random}, f.simulator, f.dataset, options);
  EXPECT_GT(result.methods[0].overall_ctr, result.methods[1].overall_ctr);
}

// ---------------------------------------------------------- BatchScorer --

// Restores the compute-context thread configuration on scope exit; the
// chunked fan-out path only engages with a multi-thread pool.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads)
      : previous_(tensor::ComputeContext::Get().num_threads()) {
    tensor::ComputeContext::Get().SetNumThreads(threads);
  }
  ~ThreadCountGuard() {
    tensor::ComputeContext::Get().SetNumThreads(previous_);
  }

 private:
  int previous_;
};

std::vector<data::Sample> RepeatRows(const data::OdDataset& dataset,
                                     size_t count) {
  std::vector<data::Sample> rows;
  EXPECT_FALSE(dataset.train_samples.empty());
  while (rows.size() < count) {
    for (const data::Sample& s : dataset.train_samples) {
      rows.push_back(s);
      if (rows.size() >= count) break;
    }
  }
  return rows;
}

void ExpectScoresIdentical(const std::vector<baselines::OdScore>& a,
                           const std::vector<baselines::OdScore>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // Thread-safe scorers are pure per-sample functions, so the chunked
    // result must be bitwise identical, not merely close.
    EXPECT_EQ(a[i].p_o, b[i].p_o) << "row " << i;
    EXPECT_EQ(a[i].p_d, b[i].p_d) << "row " << i;
  }
}

TEST(BatchScorerTest, EmptyRowsYieldEmptyScores) {
  Fixture& f = SharedFixture();
  baselines::MostPop method;
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  ThreadCountGuard guard(4);
  std::vector<baselines::OdScore> scores =
      ScoreChunked(&method, f.dataset, {});
  EXPECT_TRUE(scores.empty());
}

TEST(BatchScorerTest, FewerRowsThanOneChunkMatchMonolithic) {
  Fixture& f = SharedFixture();
  baselines::MostPop method;
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  ThreadCountGuard guard(4);
  std::vector<data::Sample> rows = RepeatRows(f.dataset, 40);
  ExpectScoresIdentical(ScoreChunked(&method, f.dataset, rows),
                        method.Score(f.dataset, rows));
}

TEST(BatchScorerTest, NonMultipleOfChunkSizeMatchesMonolithic) {
  Fixture& f = SharedFixture();
  baselines::MostPop method;
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  ThreadCountGuard guard(4);
  // 600 = 2 full chunks of 256 plus an 88-row tail.
  std::vector<data::Sample> rows = RepeatRows(f.dataset, 600);
  ExpectScoresIdentical(ScoreChunked(&method, f.dataset, rows),
                        method.Score(f.dataset, rows));
}

TEST(BatchScorerTest, ExactChunkMultipleMatchesMonolithic) {
  Fixture& f = SharedFixture();
  baselines::MostPop method;
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  ThreadCountGuard guard(4);
  std::vector<data::Sample> rows = RepeatRows(f.dataset, 2 * kScoreChunkSize);
  ExpectScoresIdentical(ScoreChunked(&method, f.dataset, rows),
                        method.Score(f.dataset, rows));
}

TEST(BatchScorerTest, GbdtChunkedMatchesMonolithic) {
  Fixture& f = SharedFixture();
  baselines::GbdtConfig config;
  config.num_trees = 10;
  config.max_depth = 2;
  baselines::GbdtRecommender method(config);
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  ThreadCountGuard guard(4);
  std::vector<data::Sample> rows = RepeatRows(f.dataset, 300);
  ExpectScoresIdentical(ScoreChunked(&method, f.dataset, rows),
                        method.Score(f.dataset, rows));
}

TEST(BatchScorerTest, SingleThreadContextFallsBackToMonolithic) {
  Fixture& f = SharedFixture();
  baselines::MostPop method;
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  ThreadCountGuard guard(1);  // no pool: chunked path must not engage
  std::vector<data::Sample> rows = RepeatRows(f.dataset, 600);
  ExpectScoresIdentical(ScoreChunked(&method, f.dataset, rows),
                        method.Score(f.dataset, rows));
}

}  // namespace
}  // namespace serving
}  // namespace odnet
