// Tests for the telemetry subsystem (DESIGN.md §12): histogram bucket math,
// percentile clamping, shard merging, registry semantics, trace spans, and
// the util/timer.h stopwatch the benches were built on. The multi-thread
// cases double as TSan targets (this binary carries the `sanitizer` label).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/telemetry/telemetry.h"
#include "src/util/timer.h"

namespace odnet {
namespace telemetry {
namespace {

// ---------------------------------------------------------------------------
// util/timer.h
// ---------------------------------------------------------------------------

TEST(StopwatchTest, ElapsedIsMonotonicNonNegative) {
  util::Stopwatch watch;
  const double a = watch.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  // Burn a little time so the second read is strictly later.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  (void)sink;
  const double b = watch.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GT(b, 0.0);
}

TEST(StopwatchTest, UnitsAgree) {
  util::Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  (void)sink;
  const double seconds = watch.ElapsedSeconds();
  const double millis = watch.ElapsedMillis();
  const int64_t micros = watch.ElapsedMicros();
  // Reads happen at slightly increasing times, so each larger unit read is
  // a lower bound for the next: s*1e3 <= ms (+slop), ms*1e3 <= us (+slop).
  EXPECT_LE(seconds * 1e3, millis + 1.0);
  EXPECT_LE(millis * 1e3, static_cast<double>(micros) + 1e3);
}

TEST(StopwatchTest, RestartResets) {
  util::Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink += static_cast<double>(i);
  (void)sink;
  const double before = watch.ElapsedSeconds();
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), before);
}

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(HistogramBucketTest, ExactBelowTwiceSubBuckets) {
  // With 16 sub-buckets per power of two, every value below 32 gets its own
  // bucket: [0, 16) by the dense prefix, [16, 32) because sub-bucket width
  // is still 1 there.
  for (int64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<int>(v)) << "v=" << v;
    EXPECT_EQ(Histogram::BucketUpperBound(static_cast<int>(v)), v);
  }
}

TEST(HistogramBucketTest, NegativeClampsToZero) {
  EXPECT_EQ(Histogram::BucketIndex(-1), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<int64_t>::min()), 0);
}

TEST(HistogramBucketTest, PowerOfTwoBoundaries) {
  // Each power of two starts a fresh block of 16 sub-buckets; the value one
  // below it lands in the previous block's last sub-bucket.
  for (int p = 5; p <= Histogram::kMaxLog2; ++p) {
    const int64_t v = int64_t{1} << p;
    const int block_start =
        (p - Histogram::kSubBucketBits + 1) << Histogram::kSubBucketBits;
    EXPECT_EQ(Histogram::BucketIndex(v), block_start) << "p=" << p;
    EXPECT_EQ(Histogram::BucketIndex(v - 1), block_start - 1) << "p=" << p;
  }
}

TEST(HistogramBucketTest, UpperBoundIsTightCover) {
  // For any value: it maps into a bucket whose upper bound is >= the value,
  // the previous bucket's upper bound is < the value, and (above the exact
  // range) the bucket's relative width is at most 1/16.
  std::vector<int64_t> probes;
  for (int p = 0; p <= Histogram::kMaxLog2; ++p) {
    const int64_t base = int64_t{1} << p;
    probes.push_back(base);
    probes.push_back(base + base / 3);
    probes.push_back(base * 2 - 1);
  }
  for (int64_t v : probes) {
    const int b = Histogram::BucketIndex(v);
    const int64_t upper = Histogram::BucketUpperBound(b);
    ASSERT_GE(upper, v) << "v=" << v;
    if (b > 0) {
      ASSERT_LT(Histogram::BucketUpperBound(b - 1), v) << "v=" << v;
    }
    if (v >= Histogram::kSubBuckets) {
      EXPECT_LE(upper - v, v / Histogram::kSubBuckets) << "v=" << v;
    }
  }
}

TEST(HistogramBucketTest, SaturatesAtLastBucket) {
  EXPECT_EQ(Histogram::BucketIndex(int64_t{1} << (Histogram::kMaxLog2 + 1)),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<int64_t>::max()),
            Histogram::kNumBuckets - 1);
  // The last in-range value also maps to the last bucket — saturation does
  // not skip an index.
  EXPECT_EQ(
      Histogram::BucketIndex((int64_t{1} << (Histogram::kMaxLog2 + 1)) - 1),
      Histogram::kNumBuckets - 1);
}

TEST(HistogramBucketTest, IndicesAreMonotonic) {
  int prev = -1;
  for (int64_t v = 0; v < 4096; ++v) {
    const int b = Histogram::BucketIndex(v);
    EXPECT_GE(b, prev) << "v=" << v;
    prev = b;
  }
}

// ---------------------------------------------------------------------------
// Snapshot and percentiles
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptySnapshot) {
  Histogram hist;
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.Mean(), 0.0);
  EXPECT_EQ(snap.Percentile(0.5), 0);
  EXPECT_EQ(snap.Percentile(1.0), 0);
}

TEST(HistogramTest, ExactPercentilesInDenseRange) {
  Histogram hist;
  for (int64_t v = 0; v < 16; ++v) hist.Record(v);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 16);
  EXPECT_EQ(snap.sum, 120);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 15);
  EXPECT_DOUBLE_EQ(snap.Mean(), 7.5);
  // rank = ceil(p * 16): p50 -> 8th smallest = 7; dense buckets are exact.
  EXPECT_EQ(snap.Percentile(0.0), 0);
  EXPECT_EQ(snap.Percentile(0.5), 7);
  EXPECT_EQ(snap.Percentile(1.0), 15);
}

TEST(HistogramTest, PercentileClampsToObservedRange) {
  Histogram hist;
  hist.Record(1000);
  hist.Record(1001);
  const HistogramSnapshot snap = hist.Snapshot();
  // Both samples share a bucket whose upper bound (1023) exceeds the
  // observed max; the percentile clamps into [min, max].
  EXPECT_EQ(snap.Percentile(0.5), 1001);
  EXPECT_EQ(snap.Percentile(1.0), 1001);
  EXPECT_EQ(snap.min, 1000);
  EXPECT_EQ(snap.max, 1001);
}

TEST(HistogramTest, PercentileBoundedRelativeError) {
  Histogram hist;
  for (int64_t v = 1; v <= 100000; ++v) hist.Record(v);
  const HistogramSnapshot snap = hist.Snapshot();
  for (double p : {0.5, 0.9, 0.99, 0.999}) {
    const auto exact =
        static_cast<int64_t>(std::ceil(p * 100000.0));  // values are 1..N
    const int64_t approx = snap.Percentile(p);
    EXPECT_GE(approx, exact) << "p=" << p;
    EXPECT_LE(approx - exact, exact / 16 + 1) << "p=" << p;
  }
}

TEST(HistogramTest, MergesThreadShards) {
  // Each recording thread gets its own shard index, so landing the samples
  // in different shards and snapshotting exercises the merge.
  Histogram hist;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < 100; ++i) hist.Record(t);
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 800);
  EXPECT_EQ(snap.sum, 100 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 7);
  for (int64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(snap.buckets[static_cast<size_t>(v)], 100) << "v=" << v;
  }
}

// TSan stress: 8 threads hammer one histogram while a reader snapshots
// concurrently. Correctness checked on the final (quiescent) snapshot;
// the interleaved snapshots only need to be tear-free (count >= 0, etc.).
TEST(HistogramTest, ConcurrentRecordStress) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> done{false};
  std::thread reader([&hist, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      const HistogramSnapshot snap = hist.Snapshot();
      ASSERT_GE(snap.count, 0);
      ASSERT_GE(snap.sum, 0);
      ASSERT_GE(snap.max, snap.min);
    }
  });
  std::vector<std::thread> writers;
  int64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record((t * kPerThread + i) % 997);
      }
    });
    for (int i = 0; i < kPerThread; ++i) {
      expected_sum += (t * kPerThread + i) % 997;
    }
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, int64_t{kThreads} * kPerThread);
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 996);
}

// ---------------------------------------------------------------------------
// Counter and gauge
// ---------------------------------------------------------------------------

TEST(CounterTest, ConcurrentAddsSum) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), 80000);
}

TEST(GaugeTest, HighWaterIsMonotone) {
  Gauge gauge;
  gauge.Set(5);
  EXPECT_EQ(gauge.Value(), 5);
  EXPECT_EQ(gauge.HighWater(), 5);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 3);
  EXPECT_EQ(gauge.HighWater(), 5);
  gauge.Add(7);
  EXPECT_EQ(gauge.Value(), 10);
  EXPECT_EQ(gauge.HighWater(), 10);
  gauge.Set(1);
  EXPECT_EQ(gauge.Value(), 1);
  EXPECT_EQ(gauge.HighWater(), 10);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, StableInstrumentPointers) {
  TelemetryRegistry& reg = TelemetryRegistry::Get();
  Counter* a = reg.GetCounter("test.registry.counter");
  Counter* b = reg.GetCounter("test.registry.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetHistogram("test.registry.hist"),
            static_cast<Histogram*>(nullptr));
  EXPECT_EQ(reg.GetHistogram("test.registry.hist"),
            reg.GetHistogram("test.registry.hist"));
}

TEST(RegistryTest, CounterValueDoesNotCreate) {
  TelemetryRegistry& reg = TelemetryRegistry::Get();
  EXPECT_EQ(reg.CounterValue("test.registry.never_created"), 0);
  const std::string json = reg.SnapshotJson();
  EXPECT_EQ(json.find("test.registry.never_created"), std::string::npos);
}

TEST(RegistryTest, SnapshotJsonHasAllSections) {
  TelemetryRegistry& reg = TelemetryRegistry::Get();
  reg.GetCounter("test.snapshot.counter")->Add(42);
  reg.GetGauge("test.snapshot.gauge")->Set(7);
  reg.GetHistogram("test.snapshot.hist")->Record(123);
  const std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.counter\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.gauge\": {\"value\": 7"),
            std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.hist\": {\"count\": 1"),
            std::string::npos);
  EXPECT_EQ(reg.CounterValue("test.snapshot.counter"), 42);
}

// ---------------------------------------------------------------------------
// Activation flags, spans, op scopes
// ---------------------------------------------------------------------------

TEST(ActivationTest, TraceImpliesEnabled) {
  const bool was_enabled = Enabled();
  const bool was_tracing = TraceEnabled();
  SetTraceEnabled(true);
  EXPECT_TRUE(TraceEnabled());
  EXPECT_TRUE(Enabled());
  SetEnabled(false);  // turning timing off must also stop tracing
  EXPECT_FALSE(Enabled());
  EXPECT_FALSE(TraceEnabled());
  SetEnabled(was_enabled);
  SetTraceEnabled(was_tracing);
}

TEST(SpanTest, SpansRecordOnlyWhenTracing) {
  SetTraceEnabled(false);
  const int64_t before = TraceEventCount();
  { SpanScope off("test.span.off", "test"); }
  EXPECT_EQ(TraceEventCount(), before);

  SetTraceEnabled(true);
  {
    SpanScope outer("test.span.outer", "test");
    SpanScope inner("test.span.inner", "test");
  }
  EXPECT_EQ(TraceEventCount(), before + 2);
  SetEnabled(false);
}

TEST(SpanTest, WriteChromeTraceRoundTrip) {
  SetTraceEnabled(true);
  { SpanScope span("test.span.roundtrip", "test"); }
  SetEnabled(false);
  const std::string path =
      ::testing::TempDir() + "/telemetry_test_trace.json";
  ASSERT_TRUE(WriteChromeTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string trace = buf.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.span.roundtrip\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(OpScopeTest, MaintainsCurrentOpNameWhileDisabled) {
  ASSERT_FALSE(Enabled());
  EXPECT_EQ(CurrentOpName(), nullptr);
  {
    OpScope outer("MatMul", nullptr);
    EXPECT_STREQ(CurrentOpName(), "MatMul");
    {
      OpScope inner("Add", nullptr);
      EXPECT_STREQ(CurrentOpName(), "Add");
    }
    EXPECT_STREQ(CurrentOpName(), "MatMul");
  }
  EXPECT_EQ(CurrentOpName(), nullptr);
}

TEST(OpScopeTest, CountsPerOpPerTierWhenEnabled) {
  TelemetryRegistry& reg = TelemetryRegistry::Get();
  const int64_t before = reg.CounterValue("tensor.op.TestOp.test_tier");
  SetEnabled(true);
  {
    OpScope scope("TestOp", "test_tier");
    EXPECT_STREQ(CurrentOpName(), "TestOp");
  }
  { OpScope scope("TestOp", "test_tier"); }
  SetEnabled(false);
  EXPECT_EQ(reg.CounterValue("tensor.op.TestOp.test_tier"), before + 2);
}

}  // namespace
}  // namespace telemetry
}  // namespace odnet
