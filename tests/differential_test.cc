// Differential correctness harness for the tensor backend.
//
// Every program below is a pure function of its seed. The harness runs it
// once under the naive reference backend (src/tensor/reference_backend.*)
// to produce the oracle, then under the optimized backend at every
// CPU-capability tier compiled in and supported by the host (scalar /
// AVX2 / AVX-512, see src/tensor/cpu_capability.h) across a
// (threads, threshold) sweep, and asserts agreement of all forward values,
// the loss, and every input gradient. The scalar tier must agree
// *bitwise* (ULP distance 0) at every (threads in {1,2,8}) x (threshold
// in {1,16384}) point — threshold 1 forces the parallel dispatch path
// even for tiny tensors; 16384 forces the serial path. Vector tiers run
// threads {1,8} at threshold 1 and must also agree bitwise, except for
// programs touching the vector-exp kernel family (Sigmoid / Tanh / Exp /
// Softmax), which are tolerance-matched per the numerics policy in
// DESIGN.md §11. Forcing ODNET_CPU_CAPABILITY=scalar in the environment
// collapses the tier sweep to the scalar leg.
//
// The file also carries the finite-difference cross-check (both backends
// must match numeric derivatives, not just each other) and the fixed-seed
// golden regression digest of a tiny end-to-end ODNET training run.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/baselines/odnet_recommender.h"
#include "src/core/config.h"
#include "src/optim/optimizer.h"
#include "src/data/fliggy_simulator.h"
#include "src/data/types.h"
#include "src/metrics/metrics.h"
#include "src/serving/evaluator.h"
#include "src/tensor/buffer_arena.h"
#include "src/tensor/compute_context.h"
#include "src/tensor/cpu_capability.h"
#include "src/tensor/graph_plan.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace odnet {
namespace {

using tensor::Backend;
using tensor::BackendGuard;
using tensor::ComputeContext;
using tensor::CpuCapability;
using tensor::CpuCapabilityName;
using tensor::CpuCapabilityScope;
using tensor::Shape;
using tensor::Tensor;

class ComputeConfigGuard {
 public:
  ComputeConfigGuard()
      : threads_(ComputeContext::Get().num_threads()),
        threshold_(ComputeContext::Get().parallel_threshold()) {}
  ~ComputeConfigGuard() {
    ComputeContext::Get().SetNumThreads(threads_);
    ComputeContext::Get().SetParallelThreshold(threshold_);
  }

 private:
  int threads_;
  int64_t threshold_;
};

// A differential program: builds a graph from `seed`, runs forward and
// backward, and appends everything observable (forward values, loss,
// gradients) to `out`.
using Program = std::function<void(uint64_t seed, std::vector<float>* out)>;

std::vector<float> RunProgram(const Program& program, uint64_t seed) {
  std::vector<float> out;
  program(seed, &out);
  return out;
}

// Comparison policy for the vector capability tiers. Bitwise (the default)
// applies to every kernel family outside the vector-exp group; programs
// that evaluate Sigmoid / Tanh / Exp / Softmax through the optimized
// backend pass a tolerance instead (the scalar tier is always bitwise
// regardless).
struct VecTol {
  float rtol = 0.0f;
  float atol = 0.0f;
  bool bitwise() const { return rtol == 0.0f && atol == 0.0f; }
};

// Single ops straight through one vector-exp kernel.
constexpr VecTol kExpFamilyOpTol{1e-5f, 1e-6f};
// Deep random chains compound vector-exp error through matmuls and
// gradients, so they get a looser budget.
constexpr VecTol kExpFamilyChainTol{1e-3f, 1e-5f};

void ExpectBackendsAgree(const Program& program, uint64_t seed,
                         const std::string& tag, VecTol vec_tol = {}) {
  ComputeConfigGuard guard;
  std::vector<float> oracle;
  {
    BackendGuard reference(Backend::kReference);
    oracle = RunProgram(program, seed);
  }
  ComputeContext& ctx = ComputeContext::Get();
  for (CpuCapability cap : tensor::AvailableCpuCapabilities()) {
    CpuCapabilityScope cap_scope(cap);
    const bool scalar_tier = cap == CpuCapability::kScalar;
    const std::vector<int> thread_sweep =
        scalar_tier ? std::vector<int>{1, 2, 8} : std::vector<int>{1, 8};
    const std::vector<int64_t> threshold_sweep =
        scalar_tier ? std::vector<int64_t>{1, 16384} : std::vector<int64_t>{1};
    for (int threads : thread_sweep) {
      for (int64_t threshold : threshold_sweep) {
        ctx.SetNumThreads(threads);
        ctx.SetParallelThreshold(threshold);
        std::vector<float> optimized = RunProgram(program, seed);
        const std::string point_tag =
            tag + " [cap=" + CpuCapabilityName(cap) +
            " threads=" + std::to_string(threads) +
            " threshold=" + std::to_string(threshold) + "]";
        if (scalar_tier || vec_tol.bitwise()) {
          testing::ExpectUlpClose(optimized, oracle, /*max_ulps=*/0,
                                  point_tag);
        } else {
          testing::ExpectClose(optimized, oracle, vec_tol.rtol, vec_tol.atol,
                               point_tag);
        }
      }
    }
  }
}

void Emit(const Tensor& t, std::vector<float>* out) {
  out->insert(out->end(), t.vec().begin(), t.vec().end());
}

void EmitGrad(const Tensor& t, std::vector<float>* out) {
  out->insert(out->end(), t.grad().begin(), t.grad().end());
}

// Scalarizes `y` by a weighted sum with a deterministic random weight, so
// every output element receives a distinct upstream gradient (Sum alone
// would seed all-ones and hide transposition bugs in backward kernels).
Tensor WeightedSum(const Tensor& y, util::Rng* rng) {
  Tensor w = testing::RandomTensor(y.shape(), rng);
  return tensor::Sum(tensor::Mul(y, w));
}

// Shared driver for single-op cases: `build` constructs the op under test
// from seeded randomness and registers its grad-bearing leaves.
void CheckOp(const std::string& tag, uint64_t seed,
             const std::function<Tensor(std::vector<Tensor>* leaves,
                                        util::Rng* rng)>& build,
             VecTol vec_tol = {}) {
  ExpectBackendsAgree(
      [&build](uint64_t s, std::vector<float>* out) {
        util::Rng rng(s);
        std::vector<Tensor> leaves;
        Tensor y = build(&leaves, &rng);
        Emit(y, out);
        Tensor loss = WeightedSum(y, &rng);
        for (Tensor& leaf : leaves) leaf.ZeroGrad();
        loss.Backward();
        Emit(loss, out);
        for (const Tensor& leaf : leaves) EmitGrad(leaf, out);
      },
      seed, tag, vec_tol);
}

// ------------------------------------------------------------ binary ops --

TEST(DifferentialOpTest, BinaryBroadcastSweep) {
  struct Kind {
    const char* name;
    Tensor (*fn)(const Tensor&, const Tensor&);
  };
  const Kind kinds[] = {{"Add", tensor::Add},
                        {"Sub", tensor::Sub},
                        {"Mul", tensor::Mul},
                        {"Div", tensor::Div}};
  for (const Kind& kind : kinds) {
    for (uint64_t variant = 0; variant < 8; ++variant) {
      const bool is_div = kind.fn == tensor::Div;
      CheckOp(std::string("Binary/") + kind.name + "/v" +
                  std::to_string(variant),
              1000 + variant,
              [&kind, is_div](std::vector<Tensor>* leaves, util::Rng* rng) {
                Shape out = testing::RandomShape(rng, 1, 4, 5);
                Shape sa = testing::RandomBroadcastVariant(out, rng);
                Shape sb = testing::RandomBroadcastVariant(out, rng);
                Tensor a = testing::RandomTensor(sa, rng, true);
                // Denominators bounded away from zero keep Div finite.
                Tensor b = is_div
                               ? testing::RandomTensor(sb, rng, true, 0.5f,
                                                       2.5f)
                               : testing::RandomTensor(sb, rng, true);
                leaves->push_back(a);
                leaves->push_back(b);
                return kind.fn(a, b);
              });
    }
  }
}

// ------------------------------------------------------ scalar and unary --

TEST(DifferentialOpTest, ScalarOps) {
  struct Kind {
    const char* name;
    std::function<Tensor(const Tensor&)> fn;
  };
  const std::vector<Kind> kinds = {
      {"AddScalar", [](const Tensor& a) { return tensor::AddScalar(a, 0.75f); }},
      {"MulScalar",
       [](const Tensor& a) { return tensor::MulScalar(a, -1.5f); }},
      {"Neg", [](const Tensor& a) { return tensor::Neg(a); }}};
  for (const Kind& kind : kinds) {
    for (uint64_t variant = 0; variant < 3; ++variant) {
      CheckOp(std::string("Scalar/") + kind.name + "/v" +
                  std::to_string(variant),
              2000 + variant,
              [&kind](std::vector<Tensor>* leaves, util::Rng* rng) {
                Tensor a = testing::RandomTensor(
                    testing::RandomShape(rng, 1, 3, 6), rng, true);
                leaves->push_back(a);
                return kind.fn(a);
              });
    }
  }
}

TEST(DifferentialOpTest, UnaryOps) {
  struct Kind {
    const char* name;
    std::function<Tensor(const Tensor&)> fn;
    VecTol vec_tol;
  };
  // Log's default inputs straddle the <= 0 clamp branch on purpose.
  // Sigmoid / Tanh / Exp are vector-exp family: tolerance under vector
  // tiers, bitwise under the scalar tier.
  const std::vector<Kind> kinds = {
      {"Relu", [](const Tensor& a) { return tensor::Relu(a); }, {}},
      {"LeakyRelu", [](const Tensor& a) { return tensor::LeakyRelu(a, 0.2f); },
       {}},
      {"Sigmoid", [](const Tensor& a) { return tensor::Sigmoid(a); },
       kExpFamilyOpTol},
      {"Tanh", [](const Tensor& a) { return tensor::Tanh(a); },
       kExpFamilyOpTol},
      {"Exp", [](const Tensor& a) { return tensor::Exp(a); },
       kExpFamilyOpTol},
      {"Log", [](const Tensor& a) { return tensor::Log(a); }, {}}};
  for (const Kind& kind : kinds) {
    for (uint64_t variant = 0; variant < 3; ++variant) {
      CheckOp(std::string("Unary/") + kind.name + "/v" +
                  std::to_string(variant),
              3000 + variant,
              [&kind](std::vector<Tensor>* leaves, util::Rng* rng) {
                Tensor a = testing::RandomTensor(
                    testing::RandomShape(rng, 1, 4, 5), rng, true);
                leaves->push_back(a);
                return kind.fn(a);
              },
              kind.vec_tol);
    }
  }
}

// ---------------------------------------------------------- linear algebra --

TEST(DifferentialOpTest, MatMulShapes) {
  // mode 0: [M,K]x[K,N]; mode 1: [B,M,K]x[B,K,N]; mode 2: [B,M,K]x[K,N]
  // (shared rhs, whose dB accumulates across the batch).
  for (int mode = 0; mode < 3; ++mode) {
    for (uint64_t variant = 0; variant < 4; ++variant) {
      CheckOp("MatMul/mode" + std::to_string(mode) + "/v" +
                  std::to_string(variant),
              4000 + variant,
              [mode](std::vector<Tensor>* leaves, util::Rng* rng) {
                const int64_t bt = rng->UniformInt(1, 3);
                const int64_t m = rng->UniformInt(1, 6);
                const int64_t k = rng->UniformInt(1, 6);
                const int64_t n = rng->UniformInt(1, 6);
                Shape sa = mode == 0 ? Shape{m, k} : Shape{bt, m, k};
                Shape sb = mode == 1 ? Shape{bt, k, n} : Shape{k, n};
                Tensor a = testing::RandomTensor(sa, rng, true);
                Tensor b = testing::RandomTensor(sb, rng, true);
                leaves->push_back(a);
                leaves->push_back(b);
                return tensor::MatMul(a, b);
              });
    }
  }
}

TEST(DifferentialOpTest, TransposeLast2) {
  for (int rank = 2; rank <= 4; ++rank) {
    CheckOp("TransposeLast2/rank" + std::to_string(rank), 4500 + rank,
            [rank](std::vector<Tensor>* leaves, util::Rng* rng) {
              Tensor a = testing::RandomTensor(
                  testing::RandomShape(rng, rank, rank, 5), rng, true);
              leaves->push_back(a);
              return tensor::TransposeLast2(a);
            });
  }
}

// -------------------------------------------------------------- reshaping --

TEST(DifferentialOpTest, ReshapeViewVsCopy) {
  // The optimized Reshape is a zero-copy view; the reference backend
  // materializes a copy node. Chaining an activation after the reshape
  // forces gradient flow through the view machinery.
  for (uint64_t variant = 0; variant < 4; ++variant) {
    CheckOp("Reshape/v" + std::to_string(variant), 5000 + variant,
            [](std::vector<Tensor>* leaves, util::Rng* rng) {
              Tensor a = testing::RandomTensor(
                  testing::RandomShape(rng, 2, 3, 4), rng, true);
              leaves->push_back(a);
              Tensor flat = tensor::Reshape(a, {a.numel()});
              Tensor back = tensor::Reshape(flat, {1, a.numel()});
              return tensor::Tanh(back);
            },
            kExpFamilyOpTol);  // ends in Tanh
  }
}

TEST(DifferentialOpTest, ConcatSliceStack) {
  for (uint64_t variant = 0; variant < 4; ++variant) {
    CheckOp("Concat/v" + std::to_string(variant), 5100 + variant,
            [](std::vector<Tensor>* leaves, util::Rng* rng) {
              Shape base = testing::RandomShape(rng, 2, 3, 4);
              const int axis =
                  static_cast<int>(rng->UniformInt(0, base.size() - 1));
              std::vector<Tensor> parts;
              for (int i = 0; i < 3; ++i) {
                Shape s = base;
                s[static_cast<size_t>(axis)] = rng->UniformInt(1, 3);
                parts.push_back(testing::RandomTensor(s, rng, true));
                leaves->push_back(parts.back());
              }
              return tensor::Concat(parts, axis);
            });
    CheckOp("Slice/v" + std::to_string(variant), 5200 + variant,
            [](std::vector<Tensor>* leaves, util::Rng* rng) {
              Shape s = testing::RandomShape(rng, 2, 4, 5);
              const int axis =
                  static_cast<int>(rng->UniformInt(0, s.size() - 1));
              const int64_t dim = s[static_cast<size_t>(axis)];
              const int64_t length = rng->UniformInt(1, dim);
              const int64_t start = rng->UniformInt(0, dim - length);
              Tensor a = testing::RandomTensor(s, rng, true);
              leaves->push_back(a);
              return tensor::Slice(a, axis, start, length);
            });
    CheckOp("Stack/v" + std::to_string(variant), 5300 + variant,
            [](std::vector<Tensor>* leaves, util::Rng* rng) {
              Shape s = testing::RandomShape(rng, 1, 3, 4);
              std::vector<Tensor> parts;
              for (int i = 0; i < 3; ++i) {
                parts.push_back(testing::RandomTensor(s, rng, true));
                leaves->push_back(parts.back());
              }
              return tensor::Stack(parts);
            });
  }
}

TEST(DifferentialOpTest, EmbeddingLookup) {
  for (uint64_t variant = 0; variant < 4; ++variant) {
    CheckOp("EmbeddingLookup/v" + std::to_string(variant), 5400 + variant,
            [](std::vector<Tensor>* leaves, util::Rng* rng) {
              const int64_t vocab = rng->UniformInt(3, 8);
              const int64_t dim = rng->UniformInt(1, 5);
              Tensor table = testing::RandomTensor({vocab, dim}, rng, true);
              leaves->push_back(table);
              // Duplicate indices exercise the scatter-add backward.
              Shape index_shape = {2, 3};
              std::vector<int64_t> indices;
              for (int i = 0; i < 6; ++i) {
                indices.push_back(rng->UniformInt(0, vocab - 1));
              }
              return tensor::EmbeddingLookup(table, indices, index_shape);
            });
  }
}

TEST(DifferentialOpTest, EmbeddingLookupDuplicateHeavy) {
  // Large lookup counts with tiny vocabularies: every row collects many
  // duplicate contributions, stressing the grouped-scatter accumulation
  // order against the serial reference scatter.
  for (uint64_t variant = 0; variant < 3; ++variant) {
    CheckOp("EmbeddingLookupDup/v" + std::to_string(variant), 5500 + variant,
            [](std::vector<Tensor>* leaves, util::Rng* rng) {
              const int64_t vocab = rng->UniformInt(2, 4);
              const int64_t dim = rng->UniformInt(1, 6);
              Tensor table = testing::RandomTensor({vocab, dim}, rng, true);
              leaves->push_back(table);
              const int64_t count = rng->UniformInt(24, 48);
              Shape index_shape = {count};
              std::vector<int64_t> indices;
              for (int64_t i = 0; i < count; ++i) {
                indices.push_back(rng->UniformInt(0, vocab - 1));
              }
              return tensor::EmbeddingLookup(table, indices, index_shape);
            });
  }
}

// ------------------------------------------------------------- train step --

// A complete optimization loop over an embedding table and a dense
// projection: lookup -> matmul -> squared loss, ZeroGrad/Backward/
// ClipGradNorm/Adam::Step for several steps, with some rows left untouched
// for stretches. Pure function of its inputs, so the sparse path (default)
// must reproduce the forced-dense pre-sparse path bit for bit at every
// (threads, threshold) point and under the reference backend.
std::vector<float> RunEmbeddingTrainLoop(bool force_dense,
                                         optim::SparseUpdateMode mode) {
  util::Rng rng(97531);
  Tensor table = testing::RandomTensor({12, 3}, &rng, true);
  Tensor w = testing::RandomTensor({3, 1}, &rng, true);
  optim::Adam opt({table, w}, 0.05);
  opt.set_sparse_update_mode(mode);
  opt.set_force_dense(force_dense);
  std::vector<float> out;
  for (int step = 0; step < 6; ++step) {
    std::vector<int64_t> indices;
    for (int i = 0; i < 5; ++i) indices.push_back(rng.UniformInt(0, 11));
    opt.ZeroGrad();
    Tensor emb = tensor::EmbeddingLookup(table, indices, {5});
    Tensor h = tensor::MatMul(emb, w);
    Tensor loss = tensor::Sum(tensor::Mul(h, h));
    loss.Backward();
    opt.ClipGradNorm(0.5);
    opt.Step();
    out.push_back(loss.item());
  }
  out.insert(out.end(), table.vec().begin(), table.vec().end());
  out.insert(out.end(), w.vec().begin(), w.vec().end());
  return out;
}

TEST(DifferentialTrainStepTest, SparseAdamMatchesDenseAcrossThreads) {
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  ctx.SetNumThreads(1);
  ctx.SetParallelThreshold(16384);
  // Oracle: the pre-sparse dense path, serial. The whole loop (embedding
  // lookup, matmul, Mul/Sum loss, clip, Adam) is built from bitwise-tier
  // kernels, so every capability tier must reproduce it exactly.
  const std::vector<float> oracle = RunEmbeddingTrainLoop(
      /*force_dense=*/true, optim::SparseUpdateMode::kDenseEquivalent);
  for (CpuCapability cap : tensor::AvailableCpuCapabilities()) {
    CpuCapabilityScope cap_scope(cap);
    for (int threads : {1, 2, 8}) {
      for (int64_t threshold : {int64_t{1}, int64_t{16384}}) {
        ctx.SetNumThreads(threads);
        ctx.SetParallelThreshold(threshold);
        const std::string tag = std::string(" [cap=") + CpuCapabilityName(cap) +
                                " threads=" + std::to_string(threads) +
                                " threshold=" + std::to_string(threshold) + "]";
        testing::ExpectUlpClose(
            RunEmbeddingTrainLoop(false,
                                  optim::SparseUpdateMode::kDenseEquivalent),
            oracle, /*max_ulps=*/0, "TrainStep/sparse" + tag);
        testing::ExpectUlpClose(
            RunEmbeddingTrainLoop(true,
                                  optim::SparseUpdateMode::kDenseEquivalent),
            oracle, /*max_ulps=*/0, "TrainStep/dense" + tag);
      }
    }
  }
  // Under the reference backend the embedding forward/backward kernels are
  // swapped for the naive oracle versions; the trained weights must not
  // move by a single bit.
  {
    BackendGuard reference(Backend::kReference);
    ctx.SetNumThreads(1);
    ctx.SetParallelThreshold(16384);
    testing::ExpectUlpClose(
        RunEmbeddingTrainLoop(false,
                              optim::SparseUpdateMode::kDenseEquivalent),
        oracle, /*max_ulps=*/0, "TrainStep/reference");
  }
}

// -------------------------------------------------------------- reductions --

TEST(DifferentialOpTest, Reductions) {
  for (uint64_t variant = 0; variant < 3; ++variant) {
    CheckOp("Sum/v" + std::to_string(variant), 6000 + variant,
            [](std::vector<Tensor>* leaves, util::Rng* rng) {
              Tensor a = testing::RandomTensor(
                  testing::RandomShape(rng, 1, 4, 5), rng, true);
              leaves->push_back(a);
              return tensor::Sum(a);
            });
    CheckOp("Mean/v" + std::to_string(variant), 6100 + variant,
            [](std::vector<Tensor>* leaves, util::Rng* rng) {
              Tensor a = testing::RandomTensor(
                  testing::RandomShape(rng, 1, 4, 5), rng, true);
              leaves->push_back(a);
              return tensor::Mean(a);
            });
  }
  // Axis reductions: every axis of a rank-3 tensor, both keepdim settings.
  for (int axis = 0; axis < 3; ++axis) {
    for (bool keepdim : {false, true}) {
      const std::string suffix =
          "/axis" + std::to_string(axis) + (keepdim ? "/keep" : "/drop");
      CheckOp("SumAxis" + suffix, 6200 + static_cast<uint64_t>(axis),
              [axis, keepdim](std::vector<Tensor>* leaves, util::Rng* rng) {
                Tensor a = testing::RandomTensor(
                    {rng->UniformInt(1, 4), rng->UniformInt(1, 4),
                     rng->UniformInt(1, 4)},
                    rng, true);
                leaves->push_back(a);
                return tensor::SumAxis(a, axis, keepdim);
              });
      CheckOp("MeanAxis" + suffix, 6300 + static_cast<uint64_t>(axis),
              [axis, keepdim](std::vector<Tensor>* leaves, util::Rng* rng) {
                Tensor a = testing::RandomTensor(
                    {rng->UniformInt(1, 4), rng->UniformInt(1, 4),
                     rng->UniformInt(1, 4)},
                    rng, true);
                leaves->push_back(a);
                return tensor::MeanAxis(a, axis, keepdim);
              });
    }
  }
}

// ------------------------------------------------- softmax / dropout / loss --

TEST(DifferentialOpTest, Softmax) {
  const std::vector<Shape> shapes = {{5}, {3, 4}, {2, 3, 5}, {4, 1}};
  for (size_t i = 0; i < shapes.size(); ++i) {
    CheckOp("Softmax/v" + std::to_string(i), 6500 + i,
            [&shapes, i](std::vector<Tensor>* leaves, util::Rng* rng) {
              Tensor a = testing::RandomTensor(shapes[i], rng, true);
              leaves->push_back(a);
              return tensor::Softmax(a);
            },
            kExpFamilyOpTol);
  }
}

TEST(DifferentialOpTest, Dropout) {
  // Training: the mask RNG stream is consumed identically by both backends,
  // so the masked outputs must match bitwise.
  CheckOp("Dropout/train", 6600,
          [](std::vector<Tensor>* leaves, util::Rng* rng) {
            Tensor a = testing::RandomTensor({4, 5}, rng, true);
            leaves->push_back(a);
            util::Rng mask_rng(rng->NextUint64());
            return tensor::Dropout(a, 0.4f, &mask_rng, true);
          });
  // Inference and p == 0: the optimized path returns the input itself
  // (zero-copy, no tape node); the oracle materializes an identity node.
  // Forward values and gradients must agree regardless.
  CheckOp("Dropout/eval", 6601,
          [](std::vector<Tensor>* leaves, util::Rng* rng) {
            Tensor a = testing::RandomTensor({4, 5}, rng, true);
            leaves->push_back(a);
            return tensor::Dropout(a, 0.4f, nullptr, false);
          });
  CheckOp("Dropout/p0", 6602,
          [](std::vector<Tensor>* leaves, util::Rng* rng) {
            Tensor a = testing::RandomTensor({4, 5}, rng, true);
            leaves->push_back(a);
            util::Rng mask_rng(7);
            return tensor::Dropout(a, 0.0f, &mask_rng, true);
          });
}

TEST(DifferentialOpTest, Losses) {
  for (uint64_t variant = 0; variant < 3; ++variant) {
    CheckOp("BceWithLogits/v" + std::to_string(variant), 6700 + variant,
            [](std::vector<Tensor>* leaves, util::Rng* rng) {
              Shape s = testing::RandomShape(rng, 1, 2, 6);
              Tensor logits = testing::RandomTensor(s, rng, true);
              // Soft labels exercise the d/dt = -x/n branch too.
              Tensor targets = testing::RandomTensor(s, rng, true, 0.0f, 1.0f);
              leaves->push_back(logits);
              leaves->push_back(targets);
              return tensor::BceWithLogits(logits, targets);
            });
    CheckOp("MseLoss/v" + std::to_string(variant), 6800 + variant,
            [](std::vector<Tensor>* leaves, util::Rng* rng) {
              Shape s = testing::RandomShape(rng, 1, 3, 5);
              Tensor pred = testing::RandomTensor(s, rng, true);
              Tensor target = testing::RandomTensor(s, rng, true);
              leaves->push_back(pred);
              leaves->push_back(target);
              return tensor::MseLoss(pred, target);
            });
  }
}

// ------------------------------------------------- loss/clamp edge cases --

// Log's eps clamp and BceWithLogits' log1p(exp(-|x|)) stability path are
// deliberately NOT dispatched to vector tiers; these cases pin their scalar
// semantics at the awkward inputs (signed zeros, denormals, the eps
// boundary, saturating logits) under every capability tier — the
// surrounding graph (Mul/Sum) runs dispatched, the edge-case math must not.
TEST(DifferentialOpTest, LogEpsClampEdgeCases) {
  // Below-eps inputs (including -0.0 and denormals) clamp to log(eps);
  // straddling values pin the exact boundary behavior.
  const std::vector<float> xs = {0.0f,    -0.0f,  1e-45f, -1e-45f, 1e-12f,
                                 0.5e-12f, 2e-12f, 1.0f,   -3.0f,  1e30f};
  ExpectBackendsAgree(
      [&xs](uint64_t, std::vector<float>* out) {
        Tensor a = Tensor::FromVector({static_cast<int64_t>(xs.size())}, xs,
                                      /*requires_grad=*/true);
        Tensor y = tensor::Log(a);
        Emit(y, out);
        util::Rng rng(424242);
        Tensor loss = WeightedSum(y, &rng);
        a.ZeroGrad();
        loss.Backward();
        Emit(loss, out);
        EmitGrad(a, out);
      },
      /*seed=*/0, "LogEdge");
}

TEST(DifferentialOpTest, BceWithLogitsSaturatedLogits) {
  // Large logits would overflow a naive log(1+exp(x)); the stable form must
  // stay finite and bitwise reproducible. Soft targets exercise both grad
  // branches.
  const std::vector<float> logits = {88.0f, -88.0f, 100.0f, -100.0f, 0.0f,
                                     -0.0f, 17.5f,  -17.5f, 1e-4f,   -1e-4f};
  const std::vector<float> targets = {0.0f, 1.0f, 0.25f, 0.75f, 0.5f,
                                      0.5f, 1.0f, 0.0f,  0.9f,  0.1f};
  ExpectBackendsAgree(
      [&logits, &targets](uint64_t, std::vector<float>* out) {
        const int64_t n = static_cast<int64_t>(logits.size());
        Tensor x = Tensor::FromVector({n}, logits, /*requires_grad=*/true);
        Tensor t = Tensor::FromVector({n}, targets, /*requires_grad=*/true);
        Tensor loss = tensor::BceWithLogits(x, t);
        EXPECT_TRUE(std::isfinite(loss.item()));
        x.ZeroGrad();
        t.ZeroGrad();
        loss.Backward();
        Emit(loss, out);
        EmitGrad(x, out);
        EmitGrad(t, out);
      },
      /*seed=*/0, "BceEdge");
}

// ----------------------------------------------------------- vector tails --

// Lengths straddling the 8-lane (AVX2) and 16-lane (AVX-512) vector widths:
// sub-width tensors, exact multiples, and one-off lengths. Vector kernels
// must handle their scalar/padded tails identically to the scalar tier
// (bitwise for non-exp families, within tolerance for the exp family).
TEST(DifferentialOpTest, VectorTailShapes) {
  for (int64_t n : {int64_t{1}, int64_t{3}, int64_t{7}, int64_t{8},
                    int64_t{9}, int64_t{15}, int64_t{16}, int64_t{17},
                    int64_t{31}, int64_t{33}}) {
    const std::string suffix = "/n" + std::to_string(n);
    const uint64_t s = static_cast<uint64_t>(n);
    CheckOp("Tail/Mul" + suffix, 9000 + s,
            [n](std::vector<Tensor>* leaves, util::Rng* rng) {
              Tensor a = testing::RandomTensor({n}, rng, true);
              Tensor b = testing::RandomTensor({n}, rng, true);
              leaves->push_back(a);
              leaves->push_back(b);
              return tensor::Mul(a, b);
            });
    CheckOp("Tail/Relu" + suffix, 9100 + s,
            [n](std::vector<Tensor>* leaves, util::Rng* rng) {
              Tensor a = testing::RandomTensor({2, n}, rng, true);
              leaves->push_back(a);
              return tensor::Relu(a);
            });
    CheckOp("Tail/Tanh" + suffix, 9200 + s,
            [n](std::vector<Tensor>* leaves, util::Rng* rng) {
              Tensor a = testing::RandomTensor({2, n}, rng, true);
              leaves->push_back(a);
              return tensor::Tanh(a);
            },
            kExpFamilyOpTol);
    CheckOp("Tail/Softmax" + suffix, 9300 + s,
            [n](std::vector<Tensor>* leaves, util::Rng* rng) {
              Tensor a = testing::RandomTensor({3, n}, rng, true);
              leaves->push_back(a);
              return tensor::Softmax(a);
            },
            kExpFamilyOpTol);
    CheckOp("Tail/MatMul" + suffix, 9400 + s,
            [n](std::vector<Tensor>* leaves, util::Rng* rng) {
              Tensor a = testing::RandomTensor({3, n}, rng, true);
              Tensor b = testing::RandomTensor({n, 2}, rng, true);
              leaves->push_back(a);
              leaves->push_back(b);
              return tensor::MatMul(a, b);
            });
    CheckOp("Tail/SumAxis" + suffix, 9500 + s,
            [n](std::vector<Tensor>* leaves, util::Rng* rng) {
              Tensor a = testing::RandomTensor({2, 3, n}, rng, true);
              leaves->push_back(a);
              return tensor::SumAxis(a, 1, false);
            });
  }
}

// ------------------------------------------------ vector-exp ULP budgets --

// The vector exp family is tolerance-tier against the scalar tier, but each
// kernel also carries an absolute accuracy contract against correctly
// rounded double-precision libm. Sweeps include signed zeros, NaN,
// denormal inputs, and the saturation regions; Exp stays inside the vector
// clamp window [-87.336, 88.377] (outside it the vector tier saturates to
// 0 / exp(hi) by design while libm returns denormals / inf).
TEST(SimdMathTest, VectorExpFamilyMatchesLibmWithinUlps) {
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  ctx.SetNumThreads(1);
  ctx.SetParallelThreshold(1);

  struct Case {
    const char* name;
    std::function<Tensor(const Tensor&)> op;
    std::function<double(double)> ref;
    float lo, hi;      // dense sweep window
    int64_t max_ulps;  // vs double-evaluated libm rounded to float
  };
  const std::vector<Case> cases = {
      {"Exp", [](const Tensor& a) { return tensor::Exp(a); },
       [](double x) { return std::exp(x); }, -87.0f, 88.0f, 8},
      // Below ~-87.3 the true sigmoid is denormal and the vector tier
      // flushes it to 0 (the ExpV clamp), so the sweep stays in the
      // normal-result window.
      {"Sigmoid", [](const Tensor& a) { return tensor::Sigmoid(a); },
       [](double x) { return 1.0 / (1.0 + std::exp(-x)); }, -87.0f, 87.0f,
       8},
      {"Tanh", [](const Tensor& a) { return tensor::Tanh(a); },
       [](double x) { return std::tanh(x); }, -20.0f, 20.0f, 16}};

  for (const Case& c : cases) {
    std::vector<float> xs;
    constexpr int kSweep = 4096;
    for (int i = 0; i < kSweep; ++i) {
      xs.push_back(c.lo + (c.hi - c.lo) * static_cast<float>(i) /
                              static_cast<float>(kSweep - 1));
    }
    for (float special : {0.0f, -0.0f, 1e-45f, -1e-45f, 1e-38f, -1e-38f,
                          std::numeric_limits<float>::quiet_NaN()}) {
      xs.push_back(special);
    }
    std::vector<float> expected;
    expected.reserve(xs.size());
    for (float x : xs) {
      expected.push_back(static_cast<float>(c.ref(static_cast<double>(x))));
    }
    const int64_t n = static_cast<int64_t>(xs.size());
    for (CpuCapability cap : tensor::AvailableCpuCapabilities()) {
      CpuCapabilityScope cap_scope(cap);
      Tensor x = Tensor::FromVector({n}, xs);
      testing::ExpectUlpClose(
          c.op(x).vec(), expected, c.max_ulps,
          std::string("UlpSweep/") + c.name + " [cap=" +
              CpuCapabilityName(cap) + "]");
    }
  }
}

// --------------------------------------------------------- random op chains --

// Seeded random graph fuzzer body: grows a DAG by repeatedly applying a
// random op to a random live node, then backprops a weighted sum of every
// live node. All structural decisions derive from shapes and the seeded
// Rng, so reference and optimized runs build the identical graph. Shared
// by the backend-differential and arena-differential tests below.
void RunRandomChain(uint64_t s, std::vector<float>* out) {
  constexpr int kSteps = 8;
  constexpr int64_t kMaxLiveNumel = 2048;
  util::Rng rng(s);
  util::Rng mask_rng(s ^ 0x9e3779b97f4a7c15ULL);
  std::vector<Tensor> leaves;
  std::vector<Tensor> live;
  Tensor x0 = testing::RandomTensor(testing::RandomShape(&rng, 1, 3, 4),
                                    &rng, true);
  leaves.push_back(x0);
  live.push_back(x0);
  for (int step = 0; step < kSteps; ++step) {
    Tensor t = live[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
    const int choice = static_cast<int>(rng.UniformInt(0, 9));
    Tensor y;
    switch (choice) {
      case 0: {  // squashing unaries keep magnitudes bounded
        const int u = static_cast<int>(rng.UniformInt(0, 4));
        y = u == 0   ? tensor::Relu(t)
            : u == 1 ? tensor::LeakyRelu(t, 0.2f)
            : u == 2 ? tensor::Sigmoid(t)
            : u == 3 ? tensor::Tanh(t)
                     : tensor::Neg(t);
        break;
      }
      case 1: {  // binary against a fresh broadcast-shaped leaf
        Shape sb = testing::RandomBroadcastVariant(t.shape(), &rng);
        const int k = static_cast<int>(rng.UniformInt(0, 3));
        Tensor b = k == 3
                       ? testing::RandomTensor(sb, &rng, true, 0.5f,
                                               2.5f)
                       : testing::RandomTensor(sb, &rng, true);
        leaves.push_back(b);
        y = k == 0   ? tensor::Add(t, b)
            : k == 1 ? tensor::Sub(t, b)
            : k == 2 ? tensor::Mul(t, b)
                     : tensor::Div(t, b);
        break;
      }
      case 2: {  // flatten-then-matmul against a fresh weight
        Tensor flat = tensor::Reshape(t, {1, t.numel()});
        const int64_t r = rng.UniformInt(1, 3);
        Tensor w = testing::RandomTensor({t.numel(), r}, &rng, true);
        leaves.push_back(w);
        y = tensor::MatMul(flat, w);
        break;
      }
      case 3:
        y = t.rank() > 0 ? tensor::Softmax(t) : tensor::Tanh(t);
        break;
      case 4: {
        if (t.rank() > 0) {
          const int ax = static_cast<int>(
              rng.UniformInt(0, t.rank() - 1));
          y = tensor::SumAxis(t, ax, rng.Bernoulli(0.5));
        } else {
          y = tensor::Tanh(t);
        }
        break;
      }
      case 5:
        y = t.rank() >= 2 ? tensor::TransposeLast2(t)
                          : tensor::Sigmoid(t);
        break;
      case 6:
        y = tensor::Reshape(t, {t.numel()});
        break;
      case 7:
        y = tensor::Dropout(t, 0.3f, &mask_rng, true);
        break;
      case 8: {  // self-concat: one impl appears as two parents
        if (t.rank() > 0) {
          const int ax = static_cast<int>(
              rng.UniformInt(0, t.rank() - 1));
          y = tensor::Concat({t, t}, ax);
        } else {
          y = tensor::Stack({t, t});
        }
        break;
      }
      default:
        y = tensor::Stack({t, t});
        break;
    }
    // Size cap keeps chains cheap; the decision depends only on
    // shapes, so both backends grow the same graph.
    if (y.numel() <= kMaxLiveNumel) live.push_back(y);
  }
  Tensor loss = tensor::Sum(live[0]);
  for (size_t i = 1; i < live.size(); ++i) {
    loss = tensor::Add(loss, tensor::Sum(live[i]));
  }
  for (Tensor& leaf : leaves) leaf.ZeroGrad();
  loss.Backward();
  Emit(loss, out);
  for (const Tensor& t : live) Emit(t, out);
  for (const Tensor& leaf : leaves) EmitGrad(leaf, out);
}

TEST(DifferentialFuzzTest, RandomOpChains) {
  constexpr int kChains = 24;
  for (uint64_t chain = 0; chain < kChains; ++chain) {
    // Chains draw Sigmoid/Tanh/Softmax, so vector tiers compare under the
    // compounded exp-family tolerance.
    ExpectBackendsAgree(RunRandomChain, 8000 + chain,
                        "Chain/" + std::to_string(chain),
                        kExpFamilyChainTol);
  }
}

// Arena differential: the same chains, run with op results leased from a
// BufferArena. Consecutive scopes on one arena hand recycled — dirty —
// buffers to every kernel flagged ZeroInit::kSkip, so any kernel that does
// not actually overwrite its whole output (or any accumulating kernel
// missing its kZeroed flag) diverges from the owned-allocation oracle here.
TEST(DifferentialFuzzTest, ArenaScopedChainsMatchOwnedAllocation) {
  // The oracle is recomputed under each capability tier (owned allocations,
  // same tier as the arena runs), so the comparison stays bitwise even for
  // exp-family ops: this test isolates buffer recycling, and every vector
  // kernel must fully overwrite its output regardless of what the recycled
  // arena buffer held — including the padded-tail lanes.
  constexpr int kChains = 12;
  for (CpuCapability cap : tensor::AvailableCpuCapabilities()) {
    CpuCapabilityScope cap_scope(cap);
    for (uint64_t chain = 0; chain < kChains; ++chain) {
      const uint64_t seed = 8000 + chain;  // same chains as RandomOpChains
      const std::vector<float> oracle = RunProgram(RunRandomChain, seed);
      tensor::BufferArena arena;
      for (int round = 0; round < 3; ++round) {  // round > 0 recycles buffers
        tensor::ArenaScope scope(&arena);
        testing::ExpectUlpClose(
            RunProgram(RunRandomChain, seed), oracle,
            /*max_ulps=*/0,
            "ArenaChain/" + std::to_string(chain) + "/round" +
                std::to_string(round) + " [cap=" + CpuCapabilityName(cap) +
                "]");
      }
      EXPECT_GT(arena.stats().reuse_hits, 0) << "chain " << chain;
    }
  }
}

// -------------------------------------------------------- capture/replay --

// Replaying a captured plan must be bitwise identical to running the same
// program eagerly — for every backend, thread count, and replay index. The
// program routes all host data through HostTensor closures over stable
// objects (the ODNET consumer pattern) and includes Dropout, so the test
// also pins the RNG-stream contract: replay k consumes exactly the random
// numbers eager run k would have consumed.
TEST(DifferentialPlanTest, CaptureReplayMatchesEagerRunForRun) {
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  constexpr int kRuns = 4;
  constexpr int64_t kB = 4;
  constexpr int64_t kD = 6;
  for (Backend backend : {Backend::kOptimized, Backend::kReference}) {
    BackendGuard bg(backend);
    for (int threads : {1, 2, 8}) {
      ctx.SetNumThreads(threads);
      ctx.SetParallelThreshold(1);

      // Host-side state: contents refreshed per run, objects stable.
      struct HostState {
        util::Rng data_rng{515};
        util::Rng mask_rng{707};
        std::vector<float> values = std::vector<float>(kB * kD);
        void Refresh() {
          for (float& v : values) {
            v = static_cast<float>(data_rng.UniformDouble(-1.0, 1.0));
          }
        }
      };
      util::Rng weight_rng(99);
      Tensor w1 = testing::RandomTensor({kD, 8}, &weight_rng);
      Tensor w2 = testing::RandomTensor({8, 3}, &weight_rng);
      auto program = [&w1, &w2](HostState* host) {
        const std::vector<float>* vals = &host->values;
        Tensor x = tensor::HostTensor({kB, kD}, [vals](float* out) {
          std::copy(vals->begin(), vals->end(), out);
        });
        Tensor h = tensor::Tanh(tensor::MatMul(x, w1));
        Tensor d = tensor::Dropout(h, 0.3f, &host->mask_rng, true);
        return std::vector<Tensor>{tensor::Softmax(tensor::MatMul(d, w2))};
      };

      // Oracle stream: kRuns eager executions with persistent host RNGs.
      HostState eager_host;
      std::vector<float> eager_stream;
      {
        tensor::NoGradGuard no_grad;
        for (int run = 0; run < kRuns; ++run) {
          eager_host.Refresh();
          Emit(program(&eager_host)[0], &eager_stream);
        }
      }

      // Plan stream: identical fresh host state, capture once, replay the
      // remaining runs.
      HostState plan_host;
      std::vector<float> plan_stream;
      plan_host.Refresh();
      std::vector<Tensor> captured;
      std::shared_ptr<tensor::GraphPlan> plan =
          tensor::GraphPlan::CaptureInference(
              [&program, &plan_host]() { return program(&plan_host); },
              &captured);
      EXPECT_TRUE(plan->has_host_stages());
      Emit(captured[0], &plan_stream);
      for (int run = 1; run < kRuns; ++run) {
        plan_host.Refresh();
        Emit(plan->Replay()[0], &plan_stream);
      }

      testing::ExpectUlpClose(
          plan_stream, eager_stream, /*max_ulps=*/0,
          std::string("CaptureReplay [backend=") +
              (backend == Backend::kReference ? "ref" : "opt") +
              " threads=" + std::to_string(threads) + "]");
    }
  }
}

// Plans stamp the SIMD capability tier at capture; replaying under any
// other tier must abort loudly (the recorded kernel closures re-resolve the
// dispatch table per execution, so a silent tier switch would change the
// numerics of a "captured" program).
TEST(DifferentialPlanDeathTest, ReplayRejectsCapabilitySwitch) {
  if (tensor::AvailableCpuCapabilities().size() < 2) {
    GTEST_SKIP() << "only the scalar tier is available; no switch to reject";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  util::Rng rng(31337);
  Tensor a = testing::RandomTensor({3, 4}, &rng);
  Tensor b = testing::RandomTensor({4, 2}, &rng);

  // Inference plan captured under the dispatched (max) tier.
  std::shared_ptr<tensor::GraphPlan> plan =
      tensor::GraphPlan::CaptureInference([&a, &b]() {
        return std::vector<Tensor>{tensor::Tanh(tensor::MatMul(a, b))};
      });
  plan->Replay();  // same tier: fine
  EXPECT_DEATH(
      {
        CpuCapabilityScope scope(CpuCapability::kScalar);
        plan->Replay();
      },
      "captured under CPU capability");

  // Train-step plan: both replay directions must reject the switch.
  Tensor w = testing::RandomTensor({4, 1}, &rng, /*requires_grad=*/true);
  std::unique_ptr<tensor::TrainStepPlan> train_plan =
      tensor::TrainStepPlan::Capture([&a, &w]() {
        Tensor h = tensor::MatMul(a, w);
        return tensor::Sum(tensor::Mul(h, h));
      });
  train_plan->ReplayForward();  // same tier: fine
  EXPECT_DEATH(
      {
        CpuCapabilityScope scope(CpuCapability::kScalar);
        train_plan->ReplayForward();
      },
      "captured under CPU capability");
  EXPECT_DEATH(
      {
        CpuCapabilityScope scope(CpuCapability::kScalar);
        train_plan->ReplayBackward();
      },
      "captured under CPU capability");
}

// ------------------------------------------------------ finite differences --

// Both backends must agree with numeric derivatives, not only with each
// other — a bug shared by both implementations would survive the
// differential tests but not central differences. Kink-free activations
// keep the numeric estimates clean.
TEST(DifferentialGradCheckTest, CompositeGraphsUnderBothBackends) {
  ComputeConfigGuard config_guard;
  for (Backend backend : {Backend::kOptimized, Backend::kReference}) {
    BackendGuard guard(backend);
    for (int threads : {1, 8}) {
      ComputeContext::Get().SetNumThreads(threads);
      ComputeContext::Get().SetParallelThreshold(1);
      util::Rng rng(11);
      Tensor a = testing::RandomTensor({3, 4}, &rng);
      Tensor b = testing::RandomTensor({4, 2}, &rng);
      Tensor c = testing::RandomTensor({1, 2}, &rng);
      testing::ExpectGradCheck(
          {a, b, c}, [](const std::vector<Tensor>& in) {
            Tensor y = tensor::Softmax(tensor::MatMul(in[0], in[1]));
            return tensor::Sum(tensor::Mul(y, in[2]));
          });

      Tensor d = testing::RandomTensor({2, 3, 1}, &rng);
      Tensor e = testing::RandomTensor({3, 4}, &rng, false, 0.5f, 2.5f);
      testing::ExpectGradCheck({d, e}, [](const std::vector<Tensor>& in) {
        return tensor::Mean(tensor::Tanh(tensor::Div(in[0], in[1])));
      });

      Tensor logits = testing::RandomTensor({5, 1}, &rng);
      Tensor targets = testing::RandomTensor({5, 1}, &rng, false, 0.05f,
                                             0.95f);
      testing::ExpectGradCheck(
          {logits, targets}, [](const std::vector<Tensor>& in) {
            return tensor::BceWithLogits(in[0], in[1]);
          });
    }
  }
}

// --------------------------------------------------------- golden digests --

// Fixed-seed tiny end-to-end ODNET training run, reduced to a digest of
// per-parameter statistics (count / mean / L2, accumulated in double) plus
// the Table-3 metric block. The digest is (a) asserted thread-count
// invariant — the determinism contract, environment-independent — and
// (b) compared against the checked-in golden file, which pins the exact
// training trajectory on the reference toolchain. Regenerate with
//   ODNET_UPDATE_GOLDEN=1 ctest -R Golden
// after an intentional numerics change, and eyeball the metric drift.

struct GoldenEntry {
  std::string name;
  double value = 0.0;
};

std::vector<GoldenEntry> ComputeTinyTrainDigest() {
  data::FliggyConfig dc;
  dc.num_users = 120;
  dc.num_cities = 25;
  dc.seed = 7;
  data::FliggySimulator simulator(dc);
  data::OdDataset dataset = simulator.Generate();

  core::OdnetConfig mc;
  mc.embed_dim = 8;
  mc.num_heads = 2;
  mc.expert_dim = 16;
  mc.tower_hidden = 8;
  mc.batch_size = 64;
  mc.epochs = 2;
  mc.seed = 13;
  baselines::OdnetRecommender odnet("ODNET-golden", &simulator.atlas(), mc);
  util::Status status = odnet.Fit(dataset);
  EXPECT_TRUE(status.ok()) << status.ToString();

  serving::EvalOptions options;
  options.num_candidates = 15;
  metrics::OdMetrics m =
      serving::EvaluateOdRecommender(&odnet, dataset, options);

  std::vector<GoldenEntry> digest;
  digest.push_back(
      {"dataset.train_samples",
       static_cast<double>(dataset.train_samples.size())});
  digest.push_back({"dataset.test_samples",
                    static_cast<double>(dataset.test_samples.size())});
  digest.push_back({"metric.auc_o", m.auc_o});
  digest.push_back({"metric.auc_d", m.auc_d});
  digest.push_back({"metric.hr1", m.hr1});
  digest.push_back({"metric.hr5", m.hr5});
  digest.push_back({"metric.hr10", m.hr10});
  digest.push_back({"metric.mrr5", m.mrr5});
  digest.push_back({"metric.mrr10", m.mrr10});
  for (const auto& [name, param] : odnet.model()->NamedParameters()) {
    double sum = 0.0;
    double sq = 0.0;
    for (float v : param.vec()) {
      sum += v;
      sq += static_cast<double>(v) * v;
    }
    const double n = static_cast<double>(param.numel());
    digest.push_back({"param." + name + ".count", n});
    digest.push_back({"param." + name + ".mean", sum / n});
    digest.push_back({"param." + name + ".l2", std::sqrt(sq)});
  }
  return digest;
}

// The scalar tier runs the verbatim pre-SIMD loop bodies, so its digest is
// pinned by the original golden file. Vector tiers route the exp family
// through polynomial kernels and own per-capability golden files (the
// digest is still asserted exactly thread-count invariant per tier —
// the padded-tail design makes vector kernels pure per-element maps).
std::string GoldenPathFor(CpuCapability cap) {
  std::string path = std::string(ODNET_GOLDEN_DIR) + "/odnet_tiny_train_digest";
  if (cap != CpuCapability::kScalar) {
    path += std::string(".") + CpuCapabilityName(cap);
  }
  return path + ".txt";
}

TEST(GoldenTest, TinyTrainDigestMatchesGolden) {
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  ctx.SetParallelThreshold(1);

  // Forced-scalar and dispatched tiers verified in the same process: a
  // capability switch between runs must be possible outside plans (each run
  // captures and discards its own plans within the scope).
  for (CpuCapability cap : tensor::AvailableCpuCapabilities()) {
    CpuCapabilityScope cap_scope(cap);
    const std::string cap_tag = std::string(" [cap=") + CpuCapabilityName(cap) + "]";

    ctx.SetNumThreads(1);
    std::vector<GoldenEntry> digest = ComputeTinyTrainDigest();
    ASSERT_FALSE(digest.empty());

    // Thread-count invariance first: the whole train + eval trajectory must
    // be exactly reproducible under a parallel pool, for every tier.
    ctx.SetNumThreads(8);
    std::vector<GoldenEntry> digest8 = ComputeTinyTrainDigest();
    ASSERT_EQ(digest.size(), digest8.size());
    for (size_t i = 0; i < digest.size(); ++i) {
      EXPECT_EQ(digest[i].name, digest8[i].name);
      EXPECT_EQ(digest[i].value, digest8[i].value)
          << digest[i].name << " differs between 1 and 8 threads" << cap_tag;
    }

    const std::string golden_path = GoldenPathFor(cap);
    if (std::getenv("ODNET_UPDATE_GOLDEN") != nullptr) {
      std::ofstream out(golden_path);
      ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
      out << "# Golden digest of the tiny fixed-seed ODNET train run (cap="
          << CpuCapabilityName(cap) << ").\n"
          << "# Regenerate: ODNET_UPDATE_GOLDEN=1 ctest -R Golden\n";
      out.precision(17);
      for (const GoldenEntry& e : digest) {
        out << e.name << " " << e.value << "\n";
      }
      continue;
    }

    std::ifstream in(golden_path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << golden_path
        << "; run with ODNET_UPDATE_GOLDEN=1 to create it";
    std::map<std::string, double> golden;
    std::string name;
    double value = 0.0;
    while (in >> name) {
      if (!name.empty() && name[0] == '#') {
        std::string rest;
        std::getline(in, rest);
        continue;
      }
      ASSERT_TRUE(static_cast<bool>(in >> value))
          << "malformed line: " << name;
      golden[name] = value;
    }
    ASSERT_EQ(golden.size(), digest.size())
        << "golden entry count drifted; regenerate with ODNET_UPDATE_GOLDEN=1";
    for (const GoldenEntry& e : digest) {
      auto it = golden.find(e.name);
      ASSERT_NE(it, golden.end()) << "no golden entry for " << e.name;
      const double tol =
          1e-6 * std::max(1.0, std::max(std::fabs(e.value),
                                        std::fabs(it->second)));
      EXPECT_NEAR(e.value, it->second, tol) << e.name << cap_tag;
    }
  }
  if (std::getenv("ODNET_UPDATE_GOLDEN") != nullptr) {
    GTEST_SKIP() << "golden files regenerated under " << ODNET_GOLDEN_DIR;
  }
}

}  // namespace
}  // namespace odnet
