#include <cmath>
#include <memory>

#include "gtest/gtest.h"
#include "src/baselines/gbdt.h"
#include "src/baselines/most_pop.h"
#include "src/baselines/odnet_recommender.h"
#include "src/baselines/sequential_nets.h"
#include "src/baselines/stl_variants.h"
#include "src/baselines/stp_udgat.h"
#include "src/core/hsg_builder.h"
#include "src/data/fliggy_simulator.h"
#include "src/serving/evaluator.h"

namespace odnet {
namespace baselines {
namespace {

struct Fixture {
  Fixture() : simulator(MakeConfig()), dataset(simulator.Generate()) {
    locations = core::AtlasLocations(simulator.atlas());
  }
  static data::FliggyConfig MakeConfig() {
    data::FliggyConfig config;
    config.num_users = 400;
    config.num_cities = 30;
    config.seed = 23;
    return config;
  }
  data::FliggySimulator simulator;
  data::OdDataset dataset;
  std::vector<graph::CityLocation> locations;
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

SingleTaskConfig FastConfig() {
  SingleTaskConfig config;
  config.epochs = 3;
  return config;
}

// ------------------------------------------------------------- MostPop --

TEST(MostPopTest, ScoresTrackPopularity) {
  Fixture& f = SharedFixture();
  MostPop method;
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  // Find the most and least popular destination by counting.
  std::vector<int64_t> counts(static_cast<size_t>(f.dataset.num_cities), 0);
  for (const data::UserHistory& h : f.dataset.histories) {
    for (const data::Booking& b : h.long_term) {
      counts[static_cast<size_t>(b.od.destination)]++;
    }
  }
  int64_t hot = 0;
  int64_t cold = 0;
  for (int64_t c = 0; c < f.dataset.num_cities; ++c) {
    if (counts[static_cast<size_t>(c)] > counts[static_cast<size_t>(hot)]) {
      hot = c;
    }
    if (counts[static_cast<size_t>(c)] < counts[static_cast<size_t>(cold)]) {
      cold = c;
    }
  }
  data::Sample hot_sample{0, {1, hot}, 0, 0, data::SampleKind::kNegNeg, 0};
  data::Sample cold_sample{0, {1, cold}, 0, 0, data::SampleKind::kNegNeg, 0};
  auto scores = method.Score(f.dataset, {hot_sample, cold_sample});
  EXPECT_GT(scores[0].p_d, scores[1].p_d);
}

TEST(MostPopTest, CurrentCityGetsTopOriginScore) {
  Fixture& f = SharedFixture();
  MostPop method;
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  const data::UserHistory& h = f.dataset.histories[0];
  data::Sample current{h.user, {h.current_city, 1}, 0, 0,
                       data::SampleKind::kNegNeg, 0};
  auto scores = method.Score(f.dataset, {current});
  EXPECT_DOUBLE_EQ(scores[0].p_o, 1.0);
}

// ----------------------------------------------------------------- GBDT --

TEST(GbdtTreeTest, FitsSimpleThresholdRule) {
  // One feature, y = 1 iff x > 0.5: a depth-1 tree should nail it.
  std::vector<float> features;
  std::vector<double> grad;
  std::vector<double> hess;
  std::vector<int64_t> rows;
  util::Rng rng(4);
  for (int64_t i = 0; i < 200; ++i) {
    float x = static_cast<float>(rng.UniformDouble());
    features.push_back(x);
    // Logistic-loss gradients around margin 0: grad = p - y = 0.5 - y.
    grad.push_back(x > 0.5f ? -0.5 : 0.5);
    hess.push_back(0.25);
    rows.push_back(i);
  }
  GbdtConfig config;
  config.max_depth = 2;
  config.min_samples_leaf = 5;
  RegressionTree tree;
  tree.Fit(features, 1, grad, hess, rows, config);
  float lo = 0.2f;
  float hi = 0.8f;
  EXPECT_LT(tree.Predict(&lo), 0.0);  // pushes toward y=0
  EXPECT_GT(tree.Predict(&hi), 0.0);  // pushes toward y=1
}

TEST(GbdtClassifierTest, LearnsXorWithDepth2) {
  // XOR needs interaction splits: depth-2 trees suffice.
  std::vector<float> features;
  std::vector<float> labels;
  util::Rng rng(5);
  for (int64_t i = 0; i < 400; ++i) {
    float a = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    float b = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    features.push_back(a);
    features.push_back(b);
    labels.push_back(a != b ? 1.0f : 0.0f);
  }
  GbdtConfig config;
  config.num_trees = 20;
  config.max_depth = 2;
  config.min_samples_leaf = 5;
  config.subsample = 1.0;
  GbdtClassifier model(config);
  model.Fit(features, 2, labels);
  float q00[] = {0, 0};
  float q01[] = {0, 1};
  float q10[] = {1, 0};
  float q11[] = {1, 1};
  EXPECT_LT(model.PredictProba(q00), 0.3);
  EXPECT_GT(model.PredictProba(q01), 0.7);
  EXPECT_GT(model.PredictProba(q10), 0.7);
  EXPECT_LT(model.PredictProba(q11), 0.3);
}

TEST(GbdtClassifierTest, ConstantLabelsYieldPrior) {
  std::vector<float> features{1, 2, 3, 4};
  std::vector<float> labels{1, 1, 1, 1};
  GbdtClassifier model(GbdtConfig{});
  model.Fit(features, 1, labels);
  float x = 2.5f;
  EXPECT_GT(model.PredictProba(&x), 0.95);
}

TEST(GbdtRecommenderTest, BeatsChanceOnDataset) {
  Fixture& f = SharedFixture();
  GbdtRecommender method{GbdtConfig{}};
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  serving::EvalOptions options;
  options.num_candidates = 15;
  metrics::OdMetrics m =
      serving::EvaluateOdRecommender(&method, f.dataset, options);
  EXPECT_GT(m.auc_o, 0.7);
  EXPECT_GT(m.auc_d, 0.6);
}

// ---------------------------------------------- single-task framework --

TEST(SingleTaskTest, ScoreRequiresFit) {
  LstmRecommender method(FastConfig());
  EXPECT_DEATH(method.Score(SharedFixture().dataset, {}), "Fit");
}

TEST(SingleTaskTest, DOnlyModeReportsNeutralOrigin) {
  Fixture& f = SharedFixture();
  SingleTaskConfig config = FastConfig();
  config.d_only = true;
  LstmRecommender method(config);
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  auto scores = method.Score(
      f.dataset, {f.dataset.test_samples.begin(),
                  f.dataset.test_samples.begin() + 5});
  for (const OdScore& s : scores) {
    EXPECT_DOUBLE_EQ(s.p_o, 0.5);
    EXPECT_NE(s.p_d, 0.5);
  }
}

// One parameterized battery over every neural baseline: fit one epoch,
// score, verify probabilities are valid and the model beats random AUC.
enum class MethodKind {
  kLstm,
  kStgn,
  kLstpm,
  kStodPpa,
  kStpUdgat,
  kStlNoGraph,
  kStlWithGraph,
  kOdnet,
  kOdnetNoGraph
};

std::unique_ptr<OdRecommender> MakeMethod(MethodKind kind, Fixture& f) {
  SingleTaskConfig stc = FastConfig();
  switch (kind) {
    case MethodKind::kLstm:
      return std::make_unique<LstmRecommender>(stc);
    case MethodKind::kStgn:
      return std::make_unique<StgnRecommender>(stc);
    case MethodKind::kLstpm:
      return std::make_unique<LstpmRecommender>(stc);
    case MethodKind::kStodPpa:
      return std::make_unique<StodPpaRecommender>(stc);
    case MethodKind::kStpUdgat:
      return std::make_unique<StpUdgatRecommender>(stc, f.locations);
    case MethodKind::kStlNoGraph:
      return std::make_unique<StlRecommender>(stc, false, f.locations);
    case MethodKind::kStlWithGraph:
      return std::make_unique<StlRecommender>(stc, true, f.locations);
    case MethodKind::kOdnet: {
      core::OdnetConfig config;
      config.epochs = 2;
      return std::make_unique<OdnetRecommender>("ODNET", &f.simulator.atlas(),
                                                config);
    }
    case MethodKind::kOdnetNoGraph: {
      core::OdnetConfig config;
      config.epochs = 2;
      config.use_hsgc = false;
      config.learning_rate = 0.003;
      return std::make_unique<OdnetRecommender>("ODNET-G",
                                                &f.simulator.atlas(), config);
    }
  }
  return nullptr;
}

class NeuralBaselineTest : public ::testing::TestWithParam<MethodKind> {};

TEST_P(NeuralBaselineTest, FitsAndScoresValidly) {
  Fixture& f = SharedFixture();
  std::unique_ptr<OdRecommender> method = MakeMethod(GetParam(), f);
  ASSERT_TRUE(method->Fit(f.dataset).ok());
  auto scores = method->Score(f.dataset, f.dataset.test_samples);
  ASSERT_EQ(scores.size(), f.dataset.test_samples.size());
  for (const OdScore& s : scores) {
    EXPECT_GE(s.p_o, 0.0);
    EXPECT_LE(s.p_o, 1.0);
    EXPECT_GE(s.p_d, 0.0);
    EXPECT_LE(s.p_d, 1.0);
    EXPECT_TRUE(std::isfinite(s.p_o));
    EXPECT_TRUE(std::isfinite(s.p_d));
  }
  // Even one epoch must beat random on this planted-signal data.
  serving::EvalOptions options;
  options.num_candidates = 15;
  metrics::OdMetrics m =
      serving::EvaluateOdRecommender(method.get(), f.dataset, options);
  EXPECT_GT(m.auc_o, 0.55) << method->name();
  EXPECT_GT(m.auc_d, 0.53) << method->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllNeural, NeuralBaselineTest,
    ::testing::Values(MethodKind::kLstm, MethodKind::kStgn,
                      MethodKind::kLstpm, MethodKind::kStodPpa,
                      MethodKind::kStpUdgat, MethodKind::kStlNoGraph,
                      MethodKind::kStlWithGraph, MethodKind::kOdnet,
                      MethodKind::kOdnetNoGraph));

// ------------------------------------------------------------ STP views --

TEST(StpUdgatTest, SpatialViewPicksNearestCities) {
  std::vector<graph::CityLocation> locations = {
      {0, 0}, {0, 1}, {0, 2}, {0, 10}};
  CityGraphView view = BuildSpatialView(locations, 2);
  EXPECT_EQ(view.num_nodes, 4);
  // City 0's two nearest are 1 and 2, not 3.
  EXPECT_EQ(view.neighbors[0], 1);
  EXPECT_EQ(view.neighbors[1], 2);
  EXPECT_EQ(view.pad[0], 1.0f);
}

TEST(StpUdgatTest, PreferenceViewCountsCoOccurrence) {
  data::OdDataset dataset;
  dataset.num_users = 2;
  dataset.num_cities = 4;
  data::UserHistory a;
  a.user = 0;
  a.long_term = {{{0, 1}, 1}, {{0, 2}, 2}};
  data::UserHistory b;
  b.user = 1;
  b.long_term = {{{0, 1}, 1}, {{0, 3}, 2}};
  dataset.histories = {a, b};
  CityGraphView view = BuildPreferenceView(dataset, 4, /*origin_role=*/false,
                                           /*cap=*/3);
  // Destination 1 co-occurs with 2 (user a) and 3 (user b).
  std::set<int64_t> nbrs;
  for (int64_t j = 0; j < 3; ++j) {
    if (view.pad[static_cast<size_t>(1 * 3 + j)] > 0.5f) {
      nbrs.insert(view.neighbors[static_cast<size_t>(1 * 3 + j)]);
    }
  }
  EXPECT_EQ(nbrs, (std::set<int64_t>{2, 3}));
}

TEST(StpUdgatTest, TemporalViewRespectsWindow) {
  data::OdDataset dataset;
  dataset.num_users = 1;
  dataset.num_cities = 3;
  data::UserHistory h;
  h.user = 0;
  h.long_term = {{{0, 1}, 0}, {{0, 2}, 100}};  // 100 days apart
  dataset.histories = {h};
  CityGraphView narrow = BuildTemporalView(dataset, 3, false, 30, 2);
  // Too far apart for a 30-day window: no temporal edge between 1 and 2.
  EXPECT_EQ(narrow.pad[static_cast<size_t>(1 * 2 + 0)], 0.0f);
  CityGraphView wide = BuildTemporalView(dataset, 3, false, 365, 2);
  EXPECT_EQ(wide.pad[static_cast<size_t>(1 * 2 + 0)], 1.0f);
}

// --------------------------------------------------------------- ODNET --

TEST(OdnetRecommenderTest, ThetaExposedAfterFit) {
  Fixture& f = SharedFixture();
  core::OdnetConfig config;
  config.epochs = 1;
  OdnetRecommender method("ODNET", &f.simulator.atlas(), config);
  EXPECT_DOUBLE_EQ(method.theta(), 0.5);  // before fit: neutral blend
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  EXPECT_GT(method.theta(), 0.3);
  EXPECT_LT(method.theta(), 0.7);
}

TEST(OdnetRecommenderTest, CombinedScoreUsesTheta) {
  Fixture& f = SharedFixture();
  core::OdnetConfig config;
  config.epochs = 1;
  OdnetRecommender method("ODNET", &f.simulator.atlas(), config);
  ASSERT_TRUE(method.Fit(f.dataset).ok());
  OdScore s{0.8, 0.2};
  double t = method.theta();
  EXPECT_NEAR(method.CombinedScore(s), t * 0.8 + (1 - t) * 0.2, 1e-12);
}

}  // namespace
}  // namespace baselines
}  // namespace odnet
