// Serving-router test battery (ISSUE 8):
//
//  - heap partial top-k vs the full-sort oracle, including deterministic
//    tie-breaking on a planted all-equal-scores list;
//  - differential fuzz (label `fuzz`): randomized request interleavings and
//    batch compositions through the router must be bitwise equal to the
//    serial RankingService oracle, across router configurations;
//  - bounded-queue edge cases: capacity 0/1, deadline firing with a single
//    queued request, shutdown draining in-flight batches, a request larger
//    than max-batch;
//  - TTL feature-cache semantics under a manual clock.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/baselines/gbdt.h"
#include "src/baselines/most_pop.h"
#include "src/data/fliggy_simulator.h"
#include "src/serving/feature_cache.h"
#include "src/serving/ranking_service.h"
#include "src/serving/serving_router.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace odnet {
namespace serving {
namespace {

struct Fixture {
  Fixture() : simulator(MakeConfig()), dataset(simulator.Generate()) {}
  static data::FliggyConfig MakeConfig() {
    data::FliggyConfig config;
    config.num_users = 200;
    config.num_cities = 30;
    config.seed = 31;
    return config;
  }
  data::FliggySimulator simulator;
  data::OdDataset dataset;
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

/// Service bundle over the shared fixture for one recommender.
struct ServiceUnderTest {
  explicit ServiceUnderTest(baselines::OdRecommender* method)
      : recall(&SharedFixture().dataset, &SharedFixture().simulator.atlas(),
               RecallOptions()),
        service(method, &SharedFixture().dataset, &recall) {}
  CandidateRecall recall;
  RankingService service;
};

baselines::MostPop& FittedMostPop() {
  static baselines::MostPop* method = [] {
    auto* m = new baselines::MostPop();
    EXPECT_TRUE(m->Fit(SharedFixture().dataset).ok());
    return m;
  }();
  return *method;
}

baselines::GbdtRecommender& FittedGbdt() {
  static baselines::GbdtRecommender* method = [] {
    baselines::GbdtConfig config;
    config.num_trees = 8;
    config.max_depth = 2;
    auto* m = new baselines::GbdtRecommender(config);
    EXPECT_TRUE(m->Fit(SharedFixture().dataset).ok());
    return m;
  }();
  return *method;
}

void ExpectListsIdentical(const std::vector<RankedFlight>& got,
                          const std::vector<RankedFlight>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].od.origin, want[i].od.origin) << context << " rank " << i;
    EXPECT_EQ(got[i].od.destination, want[i].od.destination)
        << context << " rank " << i;
    // Bitwise: batching must not perturb scores at all.
    EXPECT_EQ(got[i].score, want[i].score) << context << " rank " << i;
  }
}

/// Full-sort oracle for SelectTopK.
std::vector<RankedFlight> SortedTopK(std::vector<RankedFlight> scored,
                                     int64_t k) {
  std::sort(scored.begin(), scored.end(), FlightBefore);
  if (k < 0) k = 0;
  if (static_cast<int64_t>(scored.size()) > k) {
    scored.resize(static_cast<size_t>(k));
  }
  return scored;
}

// ------------------------------------------------------------- SelectTopK --

TEST(SelectTopKTest, MatchesFullSortOracleRandomized) {
  util::Rng rng(911);
  for (int iter = 0; iter < 50; ++iter) {
    const int64_t n = rng.UniformInt(0, 60);
    std::vector<RankedFlight> scored;
    for (int64_t i = 0; i < n; ++i) {
      RankedFlight f;
      f.od.origin = rng.UniformInt(0, 12);
      f.od.destination = rng.UniformInt(0, 12);
      // Quantized scores force plenty of exact ties.
      f.score = static_cast<double>(rng.UniformInt(0, 4)) / 4.0;
      scored.push_back(f);
    }
    for (int64_t k : {int64_t{0}, int64_t{1}, int64_t{5}, n, 2 * n + 1}) {
      ExpectListsIdentical(SelectTopK(scored, k), SortedTopK(scored, k),
                           "iter " + std::to_string(iter) + " k " +
                               std::to_string(k));
    }
  }
}

TEST(SelectTopKTest, AllEqualScoresTieBreakByFlightId) {
  // Planted all-equal-scores dataset: every flight scores 0.25, so the
  // returned order must be flight id (origin, then destination) alone —
  // independent of the candidate order.
  std::vector<RankedFlight> flights;
  for (int64_t o = 0; o < 6; ++o) {
    for (int64_t d = 0; d < 5; ++d) {
      if (o == d) continue;
      flights.push_back(RankedFlight{data::OdPair{o, d}, 0.25});
    }
  }
  std::vector<RankedFlight> expected = SortedTopK(flights, 10);
  util::Rng rng(7);
  for (int iter = 0; iter < 5; ++iter) {
    rng.Shuffle(&flights);
    ExpectListsIdentical(SelectTopK(flights, 10), expected,
                         "shuffle " + std::to_string(iter));
  }
  std::vector<RankedFlight> reversed(flights.rbegin(), flights.rend());
  ExpectListsIdentical(SelectTopK(reversed, 10), expected, "reversed");
}

TEST(SelectTopKTest, RecommendTopKMatchesFullSortOracle) {
  ServiceUnderTest sut(&FittedMostPop());
  for (int64_t user = 0; user < 25; ++user) {
    std::vector<data::OdPair> candidates = sut.service.RecallFor(user);
    std::vector<double> scores = sut.service.ScoreCandidates(user, candidates);
    std::vector<RankedFlight> scored;
    for (size_t i = 0; i < candidates.size(); ++i) {
      scored.push_back(RankedFlight{candidates[i], scores[i]});
    }
    for (int64_t k : {1, 5, 100}) {
      ExpectListsIdentical(sut.service.RecommendTopK(user, k),
                           SortedTopK(scored, k),
                           "user " + std::to_string(user) + " k " +
                               std::to_string(k));
    }
  }
}

// ---------------------------------------------------- router differential --

struct Request {
  int64_t user;
  int64_t k;
};

std::vector<Request> MakeRequests(util::Rng* rng, int64_t count) {
  std::vector<Request> requests;
  const int64_t num_users = SharedFixture().dataset.num_users;
  for (int64_t i = 0; i < count; ++i) {
    Request r;
    r.user = rng->UniformInt(0, num_users - 1);
    const int64_t kind = rng->UniformInt(0, 3);
    r.k = kind == 0 ? 1 : kind == 1 ? 3 : kind == 2 ? 7 : 100;
    requests.push_back(r);
  }
  return requests;
}

/// Submits `requests` from `num_threads` concurrent submitters (each thread
/// a shuffled slice) and returns results in request order.
std::vector<TopKResult> RunThroughRouter(ServingRouter* router,
                                         const std::vector<Request>& requests,
                                         int num_threads, uint64_t seed) {
  std::vector<std::future<TopKResult>> futures(requests.size());
  std::vector<std::thread> submitters;
  for (int t = 0; t < num_threads; ++t) {
    submitters.emplace_back([&, t] {
      std::vector<size_t> mine;
      for (size_t i = static_cast<size_t>(t); i < requests.size();
           i += static_cast<size_t>(num_threads)) {
        mine.push_back(i);
      }
      util::Rng rng(seed + static_cast<uint64_t>(t));
      rng.Shuffle(&mine);
      for (size_t i : mine) {
        futures[i] = router->SubmitTopK(requests[i].user, requests[i].k);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  std::vector<TopKResult> results;
  results.reserve(requests.size());
  for (std::future<TopKResult>& f : futures) results.push_back(f.get());
  return results;
}

void RunDifferential(baselines::OdRecommender* method, uint64_t seed) {
  ServiceUnderTest sut(method);
  util::Rng rng(seed);
  std::vector<Request> requests = MakeRequests(&rng, 48);
  std::vector<std::vector<RankedFlight>> oracle;
  oracle.reserve(requests.size());
  for (const Request& r : requests) {
    oracle.push_back(sut.service.RecommendTopK(r.user, r.k));
  }

  for (int config = 0; config < 5; ++config) {
    RouterOptions options;
    options.num_workers = static_cast<int>(rng.UniformInt(1, 3));
    const int64_t batch_pick = rng.UniformInt(0, 2);
    options.max_batch_rows = batch_pick == 0 ? 8 : batch_pick == 1 ? 64 : 256;
    const int64_t deadline_pick = rng.UniformInt(0, 2);
    options.batch_deadline_us =
        deadline_pick == 0 ? 0 : deadline_pick == 1 ? 100 : 2000;
    options.pad_to_bucket = rng.Bernoulli(0.5);
    options.cache_capacity = rng.Bernoulli(0.5) ? 0 : 1024;
    options.queue_capacity = 4096;  // no shedding in the differential runs
    ServingRouter router(&sut.service, options);
    std::vector<TopKResult> results =
        RunThroughRouter(&router, requests, 3, seed * 17 + config);
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(results[i].ok())
          << "config " << config << " request " << i << ": "
          << results[i].status().ToString();
      ExpectListsIdentical(results[i].value(), oracle[i],
                           "config " + std::to_string(config) + " request " +
                               std::to_string(i));
    }
  }
}

TEST(ServingRouterDifferentialTest, MostPopBatchedEqualsSerialOracle) {
  RunDifferential(&FittedMostPop(), 1234);
}

TEST(ServingRouterDifferentialTest, GbdtBatchedEqualsSerialOracle) {
  RunDifferential(&FittedGbdt(), 5678);
}

// --------------------------------------------------------- gate test prop --

/// Wraps a thread-safe scorer so Score blocks until Open(): makes "worker
/// busy scoring" a deterministic state the queue tests can hold.
class GateScorer : public baselines::OdRecommender {
 public:
  explicit GateScorer(baselines::OdRecommender* inner) : inner_(inner) {}

  std::string name() const override { return "Gate"; }
  util::Status Fit(const data::OdDataset& dataset) override {
    return inner_->Fit(dataset);
  }
  bool ThreadSafeScore() const override { return true; }
  std::vector<baselines::OdScore> Score(
      const data::OdDataset& dataset,
      const std::vector<data::Sample>& samples) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entries_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return open_; });
    }
    return inner_->Score(dataset, samples);
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  void AwaitEntries(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this, n] { return entries_ >= n; });
  }

 private:
  baselines::OdRecommender* inner_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
  int entries_ = 0;
};

// ------------------------------------------------------- queue edge cases --

TEST(ServingRouterEdgeTest, CapacityZeroShedsEveryRequest) {
  ServiceUnderTest sut(&FittedMostPop());
  RouterOptions options;
  options.queue_capacity = 0;
  const int64_t shed_before =
      telemetry::TelemetryRegistry::Get().CounterValue("serving.router.shed");
  ServingRouter router(&sut.service, options);
  for (int i = 0; i < 3; ++i) {
    TopKResult result = router.RecommendTopK(i, 5);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
  }
  EXPECT_EQ(telemetry::TelemetryRegistry::Get().CounterValue(
                "serving.router.shed"),
            shed_before + 3);
}

TEST(ServingRouterEdgeTest, CapacityOneAdmitsOneAndShedsTheBurst) {
  GateScorer gate(&FittedMostPop());
  ServiceUnderTest sut(&gate);
  RouterOptions options;
  options.queue_capacity = 1;
  options.max_batch_rows = 1;  // one request per batch
  options.num_workers = 1;
  options.batch_deadline_us = 0;
  ServingRouter router(&sut.service, options);

  // First request is dequeued into a (gated) in-flight batch...
  std::future<TopKResult> first = router.SubmitTopK(0, 5);
  gate.AwaitEntries(1);
  // ...so the queue is empty again: the second request occupies the single
  // slot, and the third must shed with the typed error.
  std::future<TopKResult> second = router.SubmitTopK(1, 5);
  TopKResult third = router.RecommendTopK(2, 5);
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), util::StatusCode::kUnavailable);

  gate.Open();
  TopKResult r1 = first.get();
  TopKResult r2 = second.get();
  EXPECT_TRUE(r1.ok());
  EXPECT_TRUE(r2.ok());
}

TEST(ServingRouterEdgeTest, DeadlineFiresWithSingleQueuedRequest) {
  ServiceUnderTest sut(&FittedMostPop());
  const std::vector<RankedFlight> oracle = sut.service.RecommendTopK(3, 5);
  RouterOptions options;
  options.max_batch_rows = 1 << 20;  // never fills from one request
  options.batch_deadline_us = 2000;
  ServingRouter router(&sut.service, options);
  TopKResult result = router.RecommendTopK(3, 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectListsIdentical(result.value(), oracle, "deadline single request");
}

TEST(ServingRouterEdgeTest, ShutdownDrainsInFlightAndQueuedRequests) {
  GateScorer gate(&FittedMostPop());
  ServiceUnderTest gated(&gate);
  ServiceUnderTest plain(&FittedMostPop());
  RouterOptions options;
  options.max_batch_rows = 1;
  options.num_workers = 1;
  options.queue_capacity = 64;
  ServingRouter router(&gated.service, options);

  std::vector<std::future<TopKResult>> futures;
  for (int64_t user = 0; user < 5; ++user) {
    futures.push_back(router.SubmitTopK(user, 4));
  }
  gate.AwaitEntries(1);  // one batch in flight, the rest queued
  std::thread shutdown_thread([&router] { router.Shutdown(); });
  gate.Open();
  shutdown_thread.join();
  for (int64_t user = 0; user < 5; ++user) {
    TopKResult result = futures[static_cast<size_t>(user)].get();
    ASSERT_TRUE(result.ok()) << "user " << user << ": "
                             << result.status().ToString();
    ExpectListsIdentical(result.value(), plain.service.RecommendTopK(user, 4),
                         "drained user " + std::to_string(user));
  }
  // After the drain, new submits are refused with the shutdown error.
  TopKResult refused = router.RecommendTopK(0, 4);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(ServingRouterEdgeTest, RequestLargerThanMaxBatchFormsOversizedBatch) {
  ServiceUnderTest sut(&FittedMostPop());
  const std::vector<RankedFlight> oracle = sut.service.RecommendTopK(7, 9);
  ASSERT_GT(sut.service.RecallFor(7).size(), 2u);
  RouterOptions options;
  options.max_batch_rows = 2;  // far below one request's candidate count
  options.batch_deadline_us = 0;
  ServingRouter router(&sut.service, options);
  TopKResult result = router.RecommendTopK(7, 9);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectListsIdentical(result.value(), oracle, "oversized request");
}

TEST(ServingRouterEdgeTest, InvalidRequestsGetTypedErrors) {
  ServiceUnderTest sut(&FittedMostPop());
  ServingRouter router(&sut.service, RouterOptions());
  TopKResult bad_k = router.RecommendTopK(0, 0);
  ASSERT_FALSE(bad_k.ok());
  EXPECT_EQ(bad_k.status().code(), util::StatusCode::kInvalidArgument);
  TopKResult bad_user =
      router.RecommendTopK(SharedFixture().dataset.num_users, 5);
  ASSERT_FALSE(bad_user.ok());
  EXPECT_EQ(bad_user.status().code(), util::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------- feature cache --

TEST(ServingRouterCacheTest, RepeatedUsersHitTheFeatureCache) {
  ServiceUnderTest sut(&FittedMostPop());
  const std::vector<RankedFlight> oracle = sut.service.RecommendTopK(11, 6);
  RouterOptions options;
  options.cache_capacity = 1024;
  options.cache_ttl_us = 0;  // never expires
  // MostPop is a pure scorer, so repeats of a hot user are answered from
  // the scored-list cache (inline, no queueing) after the first request.
  const int64_t hits_before = telemetry::TelemetryRegistry::Get().CounterValue(
      "serving.router.scored.hits");
  ServingRouter router(&sut.service, options);
  for (int i = 0; i < 10; ++i) {
    TopKResult result = router.RecommendTopK(11, 6);
    ASSERT_TRUE(result.ok());
    ExpectListsIdentical(result.value(), oracle,
                         "cached repeat " + std::to_string(i));
  }
  EXPECT_GE(telemetry::TelemetryRegistry::Get().CounterValue(
                "serving.router.scored.hits"),
            hits_before + 9);
  // Different k against the same warm entry: still the full-sort answer.
  ExpectListsIdentical(router.RecommendTopK(11, 2).value(),
                       sut.service.RecommendTopK(11, 2), "cached k=2");
}

/// Pure per-sample scorer over a fitted inner method with a mutable score
/// shift, standing in for a model whose weights get refreshed while the
/// router is serving from its caches.
class ShiftScorer : public baselines::OdRecommender {
 public:
  explicit ShiftScorer(baselines::OdRecommender* inner) : inner_(inner) {}

  std::string name() const override { return "Shift"; }
  util::Status Fit(const data::OdDataset&) override {
    return util::Status::OK();  // inner is already fitted
  }
  bool ThreadSafeScore() const override { return true; }
  std::vector<baselines::OdScore> Score(
      const data::OdDataset& dataset,
      const std::vector<data::Sample>& samples) override {
    std::vector<baselines::OdScore> out = inner_->Score(dataset, samples);
    const double shift = shift_.load();
    for (baselines::OdScore& s : out) {
      s.p_o += shift;
      s.p_d += shift;
    }
    return out;
  }
  void InvalidateServingPlans() override { invalidations_.fetch_add(1); }

  void set_shift(double shift) { shift_.store(shift); }
  int invalidations() const { return invalidations_.load(); }

 private:
  baselines::OdRecommender* inner_;
  std::atomic<double> shift_{0.0};
  std::atomic<int> invalidations_{0};
};

TEST(ServingRouterCacheTest, InvalidateCachesDropsStaleScoredLists) {
  ShiftScorer scorer(&FittedMostPop());
  ServiceUnderTest sut(&scorer);
  RouterOptions options;
  options.cache_capacity = 1024;
  options.cache_ttl_us = 0;  // never expires: only invalidation can evict
  ServingRouter router(&sut.service, options);

  // Warm the scored-list cache, then "refresh the model".
  const TopKResult before = router.RecommendTopK(11, 6);
  ASSERT_TRUE(before.ok());
  scorer.set_shift(0.25);

  // The warm entry keeps serving pre-refresh scores: staleness is exactly
  // what InvalidateCaches exists to end.
  TopKResult stale = router.RecommendTopK(11, 6);
  ASSERT_TRUE(stale.ok());
  ExpectListsIdentical(stale.value(), before.value(), "stale cached repeat");

  router.InvalidateCaches();
  EXPECT_EQ(scorer.invalidations(), 1)
      << "router must forward the refresh to the model's plan cache";

  // Next request re-recalls and re-scores with the new weights, matching
  // the serial post-refresh oracle.
  const std::vector<RankedFlight> oracle = sut.service.RecommendTopK(11, 6);
  TopKResult fresh = router.RecommendTopK(11, 6);
  ASSERT_TRUE(fresh.ok());
  ExpectListsIdentical(fresh.value(), oracle, "post-invalidate request");
  ASSERT_FALSE(fresh.value().empty());
  EXPECT_NE(fresh.value()[0].score, stale.value()[0].score)
      << "post-refresh scores must reflect the shifted weights";
}

TEST(TtlCacheTest, ManualClockExpiryAndRefresh) {
  std::atomic<int64_t> now{0};
  TtlCache<int>::Options options;
  options.capacity = 64;
  options.ttl_ns = 100;
  options.clock = [&now] { return now.load(); };
  TtlCache<int> cache(options);

  cache.Insert(5, 42);
  std::shared_ptr<const int> hit = cache.Lookup(5);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42);

  now = 99;  // expires at insert(0) + 100
  EXPECT_NE(cache.Lookup(5), nullptr);
  now = 100;
  EXPECT_EQ(cache.Lookup(5), nullptr) << "entry must expire at TTL";
  EXPECT_EQ(cache.size(), 0) << "expired entry is removed on lookup";

  cache.Insert(5, 43);  // re-insert restarts the TTL
  now = 150;
  hit = cache.Lookup(5);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 43);
}

TEST(TtlCacheTest, CapacityBoundsEntriesAndKeepsNewest) {
  TtlCache<int>::Options options;
  options.capacity = 16;  // one entry per shard
  TtlCache<int> cache(options);
  for (int64_t key = 0; key < 100; ++key) {
    cache.Insert(key, static_cast<int>(key));
    std::shared_ptr<const int> hit = cache.Lookup(key);
    ASSERT_NE(hit, nullptr) << "freshly inserted key " << key;
    EXPECT_EQ(*hit, static_cast<int>(key));
  }
  EXPECT_LE(cache.size(), 16);
}

TEST(TtlCacheTest, ZeroCapacityDisablesCaching) {
  TtlCache<int>::Options options;
  options.capacity = 0;
  TtlCache<int> cache(options);
  cache.Insert(1, 10);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.size(), 0);
}

}  // namespace
}  // namespace serving
}  // namespace odnet
