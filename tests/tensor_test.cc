#include "src/tensor/tensor.h"

#include <cmath>
#include <cstring>

#include "gtest/gtest.h"
#include "src/tensor/compute_context.h"
#include "src/tensor/ops.h"
#include "src/tensor/shape.h"
#include "tests/test_util.h"

namespace odnet {
namespace tensor {
namespace {

using ::odnet::testing::ExpectGradCheck;
using ::odnet::testing::ExpectTensorNear;

// ---------------------------------------------------------------- Shape --

TEST(ShapeTest, NumelScalarIsOne) { EXPECT_EQ(Numel({}), 1); }

TEST(ShapeTest, NumelProduct) { EXPECT_EQ(Numel({2, 3, 4}), 24); }

TEST(ShapeTest, ContiguousStridesRowMajor) {
  auto strides = ContiguousStrides({2, 3, 4});
  EXPECT_EQ(strides, (std::vector<int64_t>{12, 4, 1}));
}

TEST(ShapeTest, BroadcastCompatible) {
  auto result = BroadcastShapes({2, 1, 4}, {3, 1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), (Shape{2, 3, 4}));
}

TEST(ShapeTest, BroadcastScalar) {
  auto result = BroadcastShapes({}, {5, 2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), (Shape{5, 2}));
}

TEST(ShapeTest, BroadcastIncompatible) {
  auto result = BroadcastShapes({2, 3}, {4, 3});
  EXPECT_FALSE(result.ok());
}

TEST(ShapeTest, IsBroadcastableTo) {
  EXPECT_TRUE(IsBroadcastableTo({1, 4}, {3, 4}));
  EXPECT_TRUE(IsBroadcastableTo({4}, {3, 4}));
  EXPECT_FALSE(IsBroadcastableTo({3, 4}, {4}));
  EXPECT_FALSE(IsBroadcastableTo({2, 4}, {3, 4}));
}

// --------------------------------------------------------------- Tensor --

TEST(TensorTest, ZerosHasCorrectShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.shape(), (Shape{2, 3}));
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FromVectorRoundTrip) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 1}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 1}), 4.0f);
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(2.5f).item(), 2.5f);
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a = Tensor::Zeros({3});
  Tensor b = a;
  b.mutable_data()[0] = 7.0f;
  EXPECT_EQ(a.data()[0], 7.0f);
  EXPECT_TRUE(a.IsSameAs(b));
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Zeros({3});
  Tensor b = a.Clone();
  b.mutable_data()[0] = 7.0f;
  EXPECT_EQ(a.data()[0], 0.0f);
  EXPECT_FALSE(a.IsSameAs(b));
}

TEST(TensorTest, RandnIsDeterministic) {
  util::Rng rng1(7);
  util::Rng rng2(7);
  Tensor a = Tensor::Randn({4, 4}, &rng1);
  Tensor b = Tensor::Randn({4, 4}, &rng2);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(TensorTest, UniformRespectsRange) {
  util::Rng rng(3);
  Tensor t = Tensor::Uniform({100}, &rng, -0.5f, 0.5f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t.data()[i], -0.5f);
    EXPECT_LT(t.data()[i], 0.5f);
  }
}

// ------------------------------------------------------- Forward values --

TEST(OpsTest, AddSameShape) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  ExpectTensorNear(Add(a, b), {11, 22, 33});
}

TEST(OpsTest, AddBroadcastRow) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  ExpectTensorNear(Add(a, b), {11, 22, 33, 14, 25, 36});
}

TEST(OpsTest, AddBroadcastColumn) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({2, 1}, {100, 200});
  ExpectTensorNear(Add(a, b), {101, 102, 103, 204, 205, 206});
}

TEST(OpsTest, MulBroadcast3d) {
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 1}, {10, 100});
  Tensor c = Mul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2, 2}));
  ExpectTensorNear(c, {10, 20, 100, 200, 30, 40, 300, 400});
}

TEST(OpsTest, SubDivValues) {
  Tensor a = Tensor::FromVector({2}, {10, 9});
  Tensor b = Tensor::FromVector({2}, {4, 3});
  ExpectTensorNear(Sub(a, b), {6, 6});
  ExpectTensorNear(Div(a, b), {2.5f, 3.0f});
}

TEST(OpsTest, ScalarOps) {
  Tensor a = Tensor::FromVector({2}, {1, -2});
  ExpectTensorNear(AddScalar(a, 5), {6, 3});
  ExpectTensorNear(MulScalar(a, -3), {-3, 6});
  ExpectTensorNear(Neg(a), {-1, 2});
}

TEST(OpsTest, ReluClampsNegatives) {
  Tensor a = Tensor::FromVector({4}, {-1, 0, 2, -3});
  ExpectTensorNear(Relu(a), {0, 0, 2, 0});
}

TEST(OpsTest, LeakyReluSlope) {
  Tensor a = Tensor::FromVector({2}, {-10, 10});
  ExpectTensorNear(LeakyRelu(a, 0.1f), {-1, 10});
}

TEST(OpsTest, SigmoidValues) {
  Tensor a = Tensor::FromVector({3}, {0, 100, -100});
  Tensor s = Sigmoid(a);
  EXPECT_NEAR(s.data()[0], 0.5f, 1e-6f);
  EXPECT_NEAR(s.data()[1], 1.0f, 1e-6f);
  EXPECT_NEAR(s.data()[2], 0.0f, 1e-6f);
}

TEST(OpsTest, TanhExpLogValues) {
  Tensor a = Tensor::FromVector({2}, {0, 1});
  EXPECT_NEAR(Tanh(a).data()[1], std::tanh(1.0f), 1e-6f);
  EXPECT_NEAR(Exp(a).data()[1], std::exp(1.0f), 1e-5f);
  Tensor b = Tensor::FromVector({2}, {1.0f, static_cast<float>(M_E)});
  EXPECT_NEAR(Log(b).data()[0], 0.0f, 1e-6f);
  EXPECT_NEAR(Log(b).data()[1], 1.0f, 1e-6f);
}

TEST(OpsTest, MatMul2d) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  ExpectTensorNear(c, {58, 64, 139, 154});
}

TEST(OpsTest, MatMulBatched) {
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2, 1}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 1, 1}));
  ExpectTensorNear(c, {17, 53});
}

TEST(OpsTest, MatMulBatchedLhsSharedRhs) {
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {1, 0, 0, 1});  // identity
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 1, 2}));
  ExpectTensorNear(c, {1, 2, 3, 4});
}

TEST(OpsTest, TransposeLast2) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = TransposeLast2(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  ExpectTensorNear(t, {1, 4, 2, 5, 3, 6});
}

TEST(OpsTest, TransposeBatched) {
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor t = TransposeLast2(a);
  ExpectTensorNear(t, {1, 3, 2, 4, 5, 7, 6, 8});
}

TEST(OpsTest, ReshapePreservesData) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  ExpectTensorNear(r, {1, 2, 3, 4, 5, 6});
}

TEST(OpsTest, ConcatLastAxis) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 1}, {9, 10});
  Tensor c = Concat({a, b}, -1);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  ExpectTensorNear(c, {1, 2, 9, 3, 4, 10});
}

TEST(OpsTest, ConcatAxis0) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  ExpectTensorNear(c, {1, 2, 3, 4, 5, 6});
}

TEST(OpsTest, SliceMiddle) {
  Tensor a = Tensor::FromVector({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor s = Slice(a, 0, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  ExpectTensorNear(s, {3, 4, 5, 6});
}

TEST(OpsTest, SliceLastAxis) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = Slice(a, 1, 2, 1);
  EXPECT_EQ(s.shape(), (Shape{2, 1}));
  ExpectTensorNear(s, {3, 6});
}

TEST(OpsTest, StackMakesLeadingAxis) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  Tensor s = Stack({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  ExpectTensorNear(s, {1, 2, 3, 4});
}

TEST(OpsTest, EmbeddingLookupGathersRows) {
  Tensor table = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor out = EmbeddingLookup(table, {2, 0, 2}, {3});
  EXPECT_EQ(out.shape(), (Shape{3, 2}));
  ExpectTensorNear(out, {5, 6, 1, 2, 5, 6});
}

TEST(OpsTest, EmbeddingLookup2dIndexShape) {
  Tensor table = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor out = EmbeddingLookup(table, {0, 1, 1, 2}, {2, 2});
  EXPECT_EQ(out.shape(), (Shape{2, 2, 2}));
  ExpectTensorNear(out, {1, 2, 3, 4, 3, 4, 5, 6});
}

TEST(OpsTest, EmbeddingLookupDuplicateIndicesAccumulate) {
  // Duplicated rows must sum their upstream gradients, under both backends.
  for (Backend backend : {Backend::kOptimized, Backend::kReference}) {
    BackendGuard guard(backend);
    Tensor table = Tensor::FromVector({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8},
                                      /*requires_grad=*/true);
    Tensor out = EmbeddingLookup(table, {2, 0, 2, 2}, {4});
    Tensor w = Tensor::FromVector({4, 2}, {1, 1, 1, 1, 1, 1, 1, 1});
    Sum(Mul(out, w)).Backward();
    // Row 2 looked up three times, row 0 once, rows 1/3 never.
    ExpectTensorNear(Tensor::FromVector({4, 2}, table.grad()),
                     {1, 1, 0, 0, 3, 3, 0, 0});
  }
}

TEST(OpsTest, EmbeddingLookupEmptyIndices) {
  Tensor table = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6},
                                    /*requires_grad=*/true);
  Tensor out = EmbeddingLookup(table, {}, {0});
  EXPECT_EQ(out.shape(), (Shape{0, 2}));
  Sum(out).Backward();
  for (float g : table.grad()) EXPECT_EQ(g, 0.0f);
  EXPECT_TRUE(table.grad_rows_valid());
  EXPECT_TRUE(table.grad_rows().empty());
}

TEST(OpsTest, EmbeddingLookupOutOfRangeDeath) {
  Tensor table = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  EXPECT_DEATH(EmbeddingLookup(table, {3}, {1}), "out of range");
  EXPECT_DEATH(EmbeddingLookup(table, {-1}, {1}), "out of range");
}

TEST(OpsTest, EmbeddingLookupRecordsTouchedRows) {
  Tensor table = Tensor::FromVector({5, 2}, std::vector<float>(10, 1.0f),
                                    /*requires_grad=*/true);
  Tensor out = EmbeddingLookup(table, {3, 1, 3, 0}, {4});
  Sum(out).Backward();
  EXPECT_TRUE(table.grad_rows_valid());
  EXPECT_EQ(table.grad_rows(), (std::vector<int64_t>{0, 1, 3}));

  // ZeroGrad resets the set to valid-and-empty and clears only what was
  // touched (the buffer must come back fully zero).
  table.ZeroGrad();
  EXPECT_TRUE(table.grad_rows_valid());
  EXPECT_TRUE(table.grad_rows().empty());
  for (float g : table.grad()) EXPECT_EQ(g, 0.0f);

  // An op that scatters densely into the table invalidates the metadata.
  Sum(Mul(table, table)).Backward();
  EXPECT_FALSE(table.grad_rows_valid());
}

TEST(OpsTest, SumAndMean) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 2.5f);
}

TEST(OpsTest, SumAxisMiddle) {
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor s = SumAxis(a, 1);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  ExpectTensorNear(s, {4, 6, 12, 14});
}

TEST(OpsTest, SumAxisKeepdim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = SumAxis(a, 1, /*keepdim=*/true);
  EXPECT_EQ(s.shape(), (Shape{2, 1}));
  ExpectTensorNear(s, {6, 15});
}

TEST(OpsTest, MeanAxisNegativeIndex) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 3, 5, 7});
  Tensor m = MeanAxis(a, -1);
  ExpectTensorNear(m, {2, 6});
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 1000, 1000, 1000});
  Tensor s = Softmax(a);
  EXPECT_NEAR(s.data()[0] + s.data()[1] + s.data()[2], 1.0f, 1e-6f);
  // Large equal logits must not overflow.
  EXPECT_NEAR(s.data()[3], 1.0f / 3.0f, 1e-6f);
}

TEST(OpsTest, SoftmaxOrderingPreserved) {
  Tensor a = Tensor::FromVector({1, 3}, {1, 3, 2});
  Tensor s = Softmax(a);
  EXPECT_GT(s.data()[1], s.data()[2]);
  EXPECT_GT(s.data()[2], s.data()[0]);
}

TEST(OpsTest, DropoutInferenceIsIdentity) {
  util::Rng rng(1);
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor d = Dropout(a, 0.5f, &rng, /*training=*/false);
  ExpectTensorNear(d, {1, 2, 3, 4});
}

TEST(OpsTest, DropoutZeroesAndScales) {
  util::Rng rng(1);
  Tensor a = Tensor::Ones({1000});
  Tensor d = Dropout(a, 0.5f, &rng, /*training=*/true);
  int64_t zeros = 0;
  for (int64_t i = 0; i < d.numel(); ++i) {
    float v = d.data()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6f);
    if (v == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 400);
  EXPECT_LT(zeros, 600);
}

TEST(OpsTest, BceWithLogitsMatchesManual) {
  Tensor x = Tensor::FromVector({2}, {0.0f, 2.0f});
  Tensor t = Tensor::FromVector({2}, {1.0f, 0.0f});
  float l0 = -std::log(0.5f);
  float l1 = -std::log(1.0f - 1.0f / (1.0f + std::exp(-2.0f)));
  EXPECT_NEAR(BceWithLogits(x, t).item(), (l0 + l1) / 2.0f, 1e-5f);
}

TEST(OpsTest, BceWithLogitsExtremeLogitsStable) {
  Tensor x = Tensor::FromVector({2}, {500.0f, -500.0f});
  Tensor t = Tensor::FromVector({2}, {1.0f, 0.0f});
  float loss = BceWithLogits(x, t).item();
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0f, 1e-5f);
}

TEST(OpsTest, MseLossValue) {
  Tensor p = Tensor::FromVector({2}, {1, 3});
  Tensor t = Tensor::FromVector({2}, {0, 1});
  EXPECT_FLOAT_EQ(MseLoss(p, t).item(), 2.5f);
}

// ------------------------------------------------------------ Backward --

TEST(AutogradTest, AddBackwardIsOnes) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3}, /*requires_grad=*/true);
  Tensor b = Tensor::FromVector({3}, {4, 5, 6}, /*requires_grad=*/true);
  Sum(Add(a, b)).Backward();
  for (int i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(a.grad()[i], 1.0f);
    EXPECT_FLOAT_EQ(b.grad()[i], 1.0f);
  }
}

TEST(AutogradTest, BroadcastBackwardReduces) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4}, true);
  Tensor b = Tensor::FromVector({2}, {1, 1}, true);
  Sum(Add(a, b)).Backward();
  // b participated in 2 rows -> grad 2 per element.
  EXPECT_FLOAT_EQ(b.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(b.grad()[1], 2.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossBackward) {
  Tensor a = Tensor::FromVector({1}, {2}, true);
  Sum(Mul(a, a)).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
  Sum(Mul(a, a)).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 8.0f);  // accumulated
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // y = x*x + x*x: grad should be 4x.
  Tensor x = Tensor::FromVector({1}, {3}, true);
  Tensor sq = Mul(x, x);
  Sum(Add(sq, sq)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
}

TEST(AutogradTest, NoGradGuardDetaches) {
  Tensor a = Tensor::FromVector({2}, {1, 2}, true);
  tensor::NoGradGuard guard;
  Tensor b = Mul(a, a);
  EXPECT_FALSE(b.requires_grad());
}

TEST(AutogradTest, NoGradGuardNestedScopesRestoreCorrectly) {
  Tensor a = Tensor::FromVector({2}, {1, 2}, true);
  EXPECT_TRUE(GradModeEnabled());
  {
    NoGradGuard outer;
    EXPECT_FALSE(GradModeEnabled());
    {
      NoGradGuard inner;
      EXPECT_FALSE(GradModeEnabled());
      EXPECT_FALSE(Mul(a, a).requires_grad());
    }
    // Leaving the inner guard restores the *outer* guard's state, not the
    // global default: grad mode must stay off.
    EXPECT_FALSE(GradModeEnabled());
    EXPECT_FALSE(Mul(a, a).requires_grad());
  }
  EXPECT_TRUE(GradModeEnabled());
  EXPECT_TRUE(Mul(a, a).requires_grad());
}

TEST(AutogradTest, GradCheckMulDiv) {
  util::Rng rng(11);
  Tensor a = Tensor::Uniform({2, 3}, &rng, 0.5f, 2.0f);
  Tensor b = Tensor::Uniform({2, 3}, &rng, 0.5f, 2.0f);
  odnet::testing::ExpectGradCheck(
      {a, b}, [](const std::vector<Tensor>& in) {
        return Sum(Div(Mul(in[0], in[1]), AddScalar(in[1], 1.0f)));
      });
}

TEST(AutogradTest, GradCheckBroadcastMul) {
  util::Rng rng(12);
  Tensor a = Tensor::Uniform({2, 3}, &rng, -1.0f, 1.0f);
  Tensor b = Tensor::Uniform({3}, &rng, 0.5f, 1.5f);
  ExpectGradCheck({a, b}, [](const std::vector<Tensor>& in) {
    return Sum(Mul(in[0], in[1]));
  });
}

TEST(AutogradTest, GradCheckMatMul) {
  util::Rng rng(13);
  Tensor a = Tensor::Uniform({3, 4}, &rng, -1.0f, 1.0f);
  Tensor b = Tensor::Uniform({4, 2}, &rng, -1.0f, 1.0f);
  ExpectGradCheck({a, b}, [](const std::vector<Tensor>& in) {
    return Sum(MatMul(in[0], in[1]));
  });
}

TEST(AutogradTest, GradCheckBatchedMatMul) {
  util::Rng rng(14);
  Tensor a = Tensor::Uniform({2, 2, 3}, &rng, -1.0f, 1.0f);
  Tensor b = Tensor::Uniform({2, 3, 2}, &rng, -1.0f, 1.0f);
  ExpectGradCheck({a, b}, [](const std::vector<Tensor>& in) {
    return Sum(MatMul(in[0], in[1]));
  });
}

TEST(AutogradTest, GradCheckMatMulSharedRhs) {
  util::Rng rng(15);
  Tensor a = Tensor::Uniform({2, 2, 3}, &rng, -1.0f, 1.0f);
  Tensor b = Tensor::Uniform({3, 2}, &rng, -1.0f, 1.0f);
  ExpectGradCheck({a, b}, [](const std::vector<Tensor>& in) {
    return Sum(MatMul(in[0], in[1]));
  });
}

TEST(AutogradTest, GradCheckSoftmaxChain) {
  util::Rng rng(16);
  Tensor a = Tensor::Uniform({2, 4}, &rng, -2.0f, 2.0f);
  Tensor w = Tensor::Uniform({2, 4}, &rng, -1.0f, 1.0f);
  ExpectGradCheck({a, w}, [](const std::vector<Tensor>& in) {
    return Sum(Mul(Softmax(in[0]), in[1]));
  });
}

TEST(AutogradTest, GradCheckActivations) {
  util::Rng rng(17);
  Tensor a = Tensor::Uniform({6}, &rng, -2.0f, 2.0f);
  ExpectGradCheck({a}, [](const std::vector<Tensor>& in) {
    return Sum(Sigmoid(Tanh(in[0])));
  });
  Tensor b = Tensor::Uniform({6}, &rng, 0.5f, 2.0f);
  ExpectGradCheck({b}, [](const std::vector<Tensor>& in) {
    return Sum(Log(Exp(in[0])));
  });
}

TEST(AutogradTest, GradCheckConcatSlice) {
  util::Rng rng(18);
  Tensor a = Tensor::Uniform({2, 2}, &rng, -1.0f, 1.0f);
  Tensor b = Tensor::Uniform({2, 3}, &rng, -1.0f, 1.0f);
  ExpectGradCheck({a, b}, [](const std::vector<Tensor>& in) {
    Tensor c = Concat({in[0], in[1]}, 1);
    return Sum(Mul(Slice(c, 1, 1, 3), Slice(c, 1, 2, 3)));
  });
}

TEST(AutogradTest, GradCheckTransposeReshape) {
  util::Rng rng(19);
  Tensor a = Tensor::Uniform({2, 3}, &rng, -1.0f, 1.0f);
  ExpectGradCheck({a}, [](const std::vector<Tensor>& in) {
    Tensor t = TransposeLast2(in[0]);
    return Sum(Mul(Reshape(t, {2, 3}), in[0]));
  });
}

TEST(AutogradTest, GradCheckEmbedding) {
  util::Rng rng(20);
  Tensor table = Tensor::Uniform({4, 3}, &rng, -1.0f, 1.0f);
  ExpectGradCheck({table}, [](const std::vector<Tensor>& in) {
    // Repeated index 1 ensures scatter-add accumulation is exercised.
    Tensor e = EmbeddingLookup(in[0], {1, 1, 3}, {3});
    return Sum(Mul(e, e));
  });
}

TEST(AutogradTest, GradCheckSumAxisMean) {
  util::Rng rng(21);
  Tensor a = Tensor::Uniform({2, 3, 2}, &rng, -1.0f, 1.0f);
  ExpectGradCheck({a}, [](const std::vector<Tensor>& in) {
    return Mean(SumAxis(in[0], 1));
  });
}

TEST(AutogradTest, GradCheckBceWithLogits) {
  util::Rng rng(22);
  Tensor x = Tensor::Uniform({5}, &rng, -2.0f, 2.0f);
  Tensor t = Tensor::FromVector({5}, {1, 0, 1, 0, 1});
  ExpectGradCheck({x}, [t](const std::vector<Tensor>& in) {
    return BceWithLogits(in[0], t);
  });
}

TEST(AutogradTest, GradCheckStack) {
  util::Rng rng(23);
  Tensor a = Tensor::Uniform({3}, &rng, -1.0f, 1.0f);
  Tensor b = Tensor::Uniform({3}, &rng, -1.0f, 1.0f);
  ExpectGradCheck({a, b}, [](const std::vector<Tensor>& in) {
    Tensor s = Stack({in[0], in[1]});
    return Sum(Mul(s, s));
  });
}

TEST(AutogradTest, GradCheckAttentionPattern) {
  // The HSGC aggregation pattern: scores = sum(self * nbr, -1), softmax,
  // weighted sum. This is the exact computation of Eq. 1 in the paper.
  util::Rng rng(24);
  Tensor self_emb = Tensor::Uniform({2, 1, 3}, &rng, -1.0f, 1.0f);
  Tensor nbr_emb = Tensor::Uniform({2, 4, 3}, &rng, -1.0f, 1.0f);
  ExpectGradCheck({self_emb, nbr_emb}, [](const std::vector<Tensor>& in) {
    Tensor scores = SumAxis(Mul(in[0], in[1]), -1);       // [2,4]
    Tensor alpha = Softmax(Relu(scores));                 // [2,4]
    Tensor alpha3 = Reshape(alpha, {2, 4, 1});
    Tensor agg = SumAxis(Mul(alpha3, in[1]), 1);          // [2,3]
    return Sum(Mul(agg, agg));
  });
}

TEST(AutogradTest, DropoutBackwardMatchesMask) {
  util::Rng rng(5);
  Tensor a = Tensor::Ones({100});
  a.set_requires_grad(true);
  Tensor d = Dropout(a, 0.3f, &rng, true);
  Sum(d).Backward();
  for (int64_t i = 0; i < a.numel(); ++i) {
    float g = a.grad()[static_cast<size_t>(i)];
    float v = d.data()[i];
    if (v == 0.0f) {
      EXPECT_FLOAT_EQ(g, 0.0f);
    } else {
      EXPECT_NEAR(g, 1.0f / 0.7f, 1e-5f);
    }
  }
}

// ------------------------------------------------------- Zero-copy views --

TEST(OpsTest, ReshapeIsZeroCopyView) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  EXPECT_EQ(r.data(), a.data());  // same storage, not a copy
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
}

TEST(AutogradTest, ReshapeViewGradFlows) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4}, /*requires_grad=*/true);
  Tensor r = Reshape(a, {4});
  EXPECT_EQ(r.data(), a.data());
  Sum(Mul(r, r)).Backward();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(a.grad()[static_cast<size_t>(i)],
                    2.0f * a.data()[i]);  // d(x^2)/dx
  }
}

TEST(OpsTest, DropoutEvalIsZeroCopyIdentity) {
  util::Rng rng(3);
  Tensor a = Tensor::Randn({4, 4}, &rng);
  EXPECT_TRUE(Dropout(a, 0.5f, &rng, /*training=*/false).IsSameAs(a));
  EXPECT_TRUE(Dropout(a, 0.0f, &rng, /*training=*/true).IsSameAs(a));
}

TEST(OpsTest, DropoutPZeroIdentityOnBothBackends) {
  // p == 0 keeps every element with scale 1/(1-p) == 1. The optimized
  // backend returns the input itself; the reference backend materializes a
  // copy node. Values and gradients must agree either way.
  util::Rng rng(3);
  Tensor a = Tensor::Randn({4, 4}, &rng, 1.0f, /*requires_grad=*/true);
  {
    Tensor d = Dropout(a, 0.0f, &rng, /*training=*/true);
    EXPECT_TRUE(d.IsSameAs(a));
  }
  {
    BackendGuard reference(Backend::kReference);
    Tensor d = Dropout(a, 0.0f, &rng, /*training=*/true);
    EXPECT_FALSE(d.IsSameAs(a));  // oracle path: a real tape node
    for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(d.data()[i], a.data()[i]);
    a.ZeroGrad();
    Sum(d).Backward();
    for (int64_t i = 0; i < a.numel(); ++i) {
      EXPECT_EQ(a.grad()[static_cast<size_t>(i)], 1.0f);
    }
  }
}

TEST(OpsTest, DropoutPOneIsRejectedOnBothBackends) {
  // p == 1 would zero everything and scale by 1/0: disallowed outright
  // rather than producing infinities.
  util::Rng rng(3);
  Tensor a = Tensor::Randn({4, 4}, &rng);
  EXPECT_DEATH(Dropout(a, 1.0f, &rng, /*training=*/true), "");
  {
    BackendGuard reference(Backend::kReference);
    EXPECT_DEATH(Dropout(a, 1.0f, &rng, /*training=*/true), "");
  }
}

// ------------------------------------------------------ Compute backend --

// Restores the process-wide compute configuration on scope exit so tests
// cannot leak thread-count or threshold changes into each other.
class ComputeConfigGuard {
 public:
  ComputeConfigGuard()
      : threads_(ComputeContext::Get().num_threads()),
        threshold_(ComputeContext::Get().parallel_threshold()) {}
  ~ComputeConfigGuard() {
    ComputeContext::Get().SetNumThreads(threads_);
    ComputeContext::Get().SetParallelThreshold(threshold_);
  }

 private:
  int threads_;
  int64_t threshold_;
};

// A mixed graph touching every parallelized kernel family: plain and
// batched/shared-rhs MatMul, broadcast Add, same-shape Mul, Softmax,
// SumAxis, unary activations — forward and backward. Returns all forward
// values and input gradients flattened for bitwise comparison.
std::vector<float> RunMixedGraphOnce() {
  util::Rng rng(1234);
  Tensor a = Tensor::Randn({5, 7}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({7, 3}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor bias = Tensor::Randn({1, 3}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor a3 = Tensor::Randn({3, 5, 7}, &rng, 1.0f, /*requires_grad=*/true);

  Tensor h = Add(MatMul(a, b), bias);
  Tensor s = Softmax(h);
  Tensor r = SumAxis(Mul(s, h), 0);
  Tensor h3 = MatMul(a3, b);  // batched lhs, shared rhs
  Tensor loss = Add(Sum(Relu(r)), Sum(Tanh(h3)));
  loss.Backward();

  std::vector<float> out;
  for (const std::vector<float>* v :
       {&h.vec(), &s.vec(), &r.vec(), &h3.vec(), &loss.vec(), &a.grad(),
        &b.grad(), &bias.grad(), &a3.grad()}) {
    out.insert(out.end(), v->begin(), v->end());
  }
  return out;
}

TEST(ComputeContextTest, BitwiseDeterministicAcrossThreadCounts) {
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  // Threshold 1 forces the parallel dispatch path even for tiny tensors;
  // odd sizes in the graph make the range partitions uneven.
  ctx.SetParallelThreshold(1);
  std::vector<std::vector<float>> runs;
  for (int threads : {1, 2, 8}) {
    ctx.SetNumThreads(threads);
    runs.push_back(RunMixedGraphOnce());
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  ASSERT_EQ(runs[0].size(), runs[2].size());
  EXPECT_EQ(0, std::memcmp(runs[0].data(), runs[1].data(),
                           runs[0].size() * sizeof(float)))
      << "2-thread run differs from serial";
  EXPECT_EQ(0, std::memcmp(runs[0].data(), runs[2].data(),
                           runs[0].size() * sizeof(float)))
      << "8-thread run differs from serial";
}

// Ten SGD steps on a small MLP; returns the final weights.
std::vector<float> TrainTinyMlpOnce() {
  util::Rng rng(99);
  Tensor x = Tensor::Randn({17, 9}, &rng);
  Tensor y = Tensor::Randn({17, 1}, &rng);
  Tensor w1 = Tensor::Randn({9, 11}, &rng, 0.3f, /*requires_grad=*/true);
  Tensor w2 = Tensor::Randn({11, 1}, &rng, 0.3f, /*requires_grad=*/true);
  for (int step = 0; step < 10; ++step) {
    w1.ZeroGrad();
    w2.ZeroGrad();
    Tensor pred = MatMul(Relu(MatMul(x, w1)), w2);
    MseLoss(pred, y).Backward();
    for (Tensor* w : {&w1, &w2}) {
      float* d = w->mutable_data();
      const std::vector<float>& g = w->grad();
      for (size_t i = 0; i < g.size(); ++i) d[i] -= 0.05f * g[i];
    }
  }
  std::vector<float> out(w1.vec());
  out.insert(out.end(), w2.vec().begin(), w2.vec().end());
  return out;
}

TEST(ComputeContextTest, TrainedWeightsIdenticalAcrossThreadCounts) {
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  ctx.SetParallelThreshold(1);
  std::vector<std::vector<float>> runs;
  for (int threads : {1, 2, 8}) {
    ctx.SetNumThreads(threads);
    runs.push_back(TrainTinyMlpOnce());
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  ASSERT_EQ(runs[0].size(), runs[2].size());
  EXPECT_EQ(0, std::memcmp(runs[0].data(), runs[1].data(),
                           runs[0].size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(runs[0].data(), runs[2].data(),
                           runs[0].size() * sizeof(float)));
}

}  // namespace
}  // namespace tensor
}  // namespace odnet
