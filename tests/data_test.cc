#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "src/data/city_atlas.h"
#include "src/data/encoding.h"
#include "src/data/fliggy_simulator.h"
#include "src/data/lbsn_adapter.h"
#include "src/data/lbsn_simulator.h"
#include "src/data/temporal_features.h"
#include "src/util/math_util.h"

namespace odnet {
namespace data {
namespace {

FliggyConfig SmallConfig() {
  FliggyConfig config;
  config.num_users = 150;
  config.num_cities = 30;
  config.seed = 7;
  return config;
}

// ------------------------------------------------------------ CityAtlas --

TEST(CityAtlasTest, SeedCitiesHavePlausibleCoordinates) {
  for (const City& city : CityAtlas::SeedCities()) {
    EXPECT_GE(city.lat, 17.0) << city.name;
    EXPECT_LE(city.lat, 54.0) << city.name;
    EXPECT_GE(city.lon, 75.0) << city.name;
    EXPECT_LE(city.lon, 135.0) << city.name;
    EXPECT_GT(city.popularity, 0.0) << city.name;
  }
}

TEST(CityAtlasTest, PaperCaseStudyCitiesPresent) {
  CityAtlas atlas = CityAtlas::Generate(64, 1);
  for (const char* name :
       {"Shanghai", "Ningbo", "Sanya", "Qingdao", "Hangzhou", "Xi'an",
        "Chengdu", "Beijing", "Dali", "Nanning", "Shijiazhuang", "Yantai",
        "Dalian", "Kunming", "Weihai", "Xiamen"}) {
    EXPECT_GE(atlas.FindByName(name), 0) << name;
  }
}

TEST(CityAtlasTest, GeneratesRequestedSize) {
  EXPECT_EQ(CityAtlas::Generate(10, 1).size(), 10);
  EXPECT_EQ(CityAtlas::Generate(200, 1).size(), 200);
}

TEST(CityAtlasTest, SyntheticExtensionIsDeterministic) {
  CityAtlas a = CityAtlas::Generate(120, 9);
  CityAtlas b = CityAtlas::Generate(120, 9);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.city(i).name, b.city(i).name);
    EXPECT_DOUBLE_EQ(a.city(i).lat, b.city(i).lat);
  }
}

TEST(CityAtlasTest, PatternQueryExcludesSelf) {
  CityAtlas atlas = CityAtlas::Generate(64, 1);
  int64_t sanya = atlas.FindByName("Sanya");
  auto seaside = atlas.CitiesWithPattern(CityPattern::kSeaside, sanya);
  EXPECT_FALSE(seaside.empty());
  EXPECT_EQ(std::find(seaside.begin(), seaside.end(), sanya), seaside.end());
  // Qingdao and Dalian are seaside (the paper's same-pattern example).
  EXPECT_NE(std::find(seaside.begin(), seaside.end(),
                      atlas.FindByName("Qingdao")),
            seaside.end());
}

TEST(CityAtlasTest, NearestCitiesSortedByDistance) {
  CityAtlas atlas = CityAtlas::Generate(64, 1);
  int64_t hangzhou = atlas.FindByName("Hangzhou");
  auto nearest = atlas.NearestCities(hangzhou, 5);
  ASSERT_EQ(nearest.size(), 5u);
  const City& h = atlas.city(hangzhou);
  double prev = 0.0;
  for (int64_t c : nearest) {
    double d = util::HaversineKm(h.lat, h.lon, atlas.city(c).lat,
                                 atlas.city(c).lon);
    EXPECT_GE(d, prev);
    prev = d;
  }
  // Ningbo is among Hangzhou's nearest (the paper's Fig. 1 scenario).
  EXPECT_NE(std::find(nearest.begin(), nearest.end(),
                      atlas.FindByName("Ningbo")),
            nearest.end());
}

// ------------------------------------------------------ FliggySimulator --

TEST(FliggySimulatorTest, DeterministicGeneration) {
  FliggySimulator sim_a(SmallConfig());
  FliggySimulator sim_b(SmallConfig());
  OdDataset a = sim_a.Generate();
  OdDataset b = sim_b.Generate();
  ASSERT_EQ(a.train_samples.size(), b.train_samples.size());
  for (size_t i = 0; i < a.train_samples.size(); ++i) {
    EXPECT_EQ(a.train_samples[i].user, b.train_samples[i].user);
    EXPECT_TRUE(a.train_samples[i].candidate == b.train_samples[i].candidate);
  }
}

TEST(FliggySimulatorTest, NegativeSamplingComposition) {
  FliggySimulator simulator(SmallConfig());
  OdDataset dataset = simulator.Generate();
  int64_t pos = 0;
  int64_t partial = 0;
  int64_t neg = 0;
  for (const Sample& s : dataset.train_samples) {
    switch (s.kind) {
      case SampleKind::kPosPos:
        ++pos;
        EXPECT_EQ(s.label_o, 1.0f);
        EXPECT_EQ(s.label_d, 1.0f);
        break;
      case SampleKind::kPosNeg:
        ++partial;
        EXPECT_EQ(s.label_o, 1.0f);
        EXPECT_EQ(s.label_d, 0.0f);
        break;
      case SampleKind::kNegPos:
        ++partial;
        EXPECT_EQ(s.label_o, 0.0f);
        EXPECT_EQ(s.label_d, 1.0f);
        break;
      case SampleKind::kNegNeg:
        ++neg;
        EXPECT_EQ(s.label_o, 0.0f);
        EXPECT_EQ(s.label_d, 0.0f);
        break;
    }
  }
  // Paper Sec. V-A-1: exactly 4 partial and 2 negative per positive.
  EXPECT_EQ(partial, 4 * pos);
  EXPECT_EQ(neg, 2 * pos);
}

TEST(FliggySimulatorTest, HistoriesAreTimeOrderedAndInWindow) {
  FliggySimulator simulator(SmallConfig());
  OdDataset dataset = simulator.Generate();
  for (const UserHistory& h : dataset.histories) {
    ASSERT_GE(h.long_term.size(), 2u);
    for (size_t i = 1; i < h.long_term.size(); ++i) {
      EXPECT_LE(h.long_term[i - 1].day, h.long_term[i].day);
      EXPECT_LT(h.long_term[i].day, 730);
    }
    EXPECT_GT(h.decision_day, 730);
    for (const Click& c : h.short_term) {
      EXPECT_GE(c.day, h.decision_day - 7);
    }
  }
}

TEST(FliggySimulatorTest, BookingsUseExistingRoutes) {
  FliggySimulator simulator(SmallConfig());
  OdDataset dataset = simulator.Generate();
  for (const UserHistory& h : dataset.histories) {
    for (const Booking& b : h.long_term) {
      EXPECT_NE(b.od.origin, b.od.destination);
      EXPECT_TRUE(simulator.RouteExists(b.od.origin, b.od.destination));
    }
    EXPECT_TRUE(simulator.RouteExists(h.next_booking.origin,
                                      h.next_booking.destination));
  }
}

TEST(FliggySimulatorTest, RouteExistenceMatchesPriceFiniteness) {
  FliggySimulator simulator(SmallConfig());
  for (int64_t o = 0; o < 30; ++o) {
    for (int64_t d = 0; d < 30; ++d) {
      if (o == d) {
        EXPECT_FALSE(simulator.RouteExists(o, d));
        continue;
      }
      EXPECT_EQ(simulator.RouteExists(o, d),
                std::isfinite(simulator.Price(o, d)));
    }
  }
}

TEST(FliggySimulatorTest, EveryCityReachable) {
  FliggySimulator simulator(SmallConfig());
  for (int64_t c = 0; c < 30; ++c) {
    bool has_out = false;
    bool has_in = false;
    for (int64_t other = 0; other < 30; ++other) {
      if (simulator.RouteExists(c, other)) has_out = true;
      if (simulator.RouteExists(other, c)) has_in = true;
    }
    EXPECT_TRUE(has_out) << "city " << c << " has no outbound route";
    EXPECT_TRUE(has_in) << "city " << c << " has no inbound route";
  }
}

TEST(FliggySimulatorTest, PlantedSignalsPresent) {
  FliggyConfig config = SmallConfig();
  config.num_users = 600;
  FliggySimulator simulator(config);
  OdDataset dataset = simulator.Generate();
  int64_t returns = 0;
  int64_t unseen_origin = 0;
  for (const UserHistory& h : dataset.histories) {
    const OdPair& last = h.long_term.back().od;
    if (h.next_booking.origin == last.destination &&
        h.next_booking.destination == last.origin) {
      ++returns;
    }
    bool seen = false;
    for (const Booking& b : h.long_term) {
      if (b.od.origin == h.next_booking.origin) seen = true;
    }
    if (!seen) ++unseen_origin;
  }
  double n = static_cast<double>(dataset.histories.size());
  // Unity-of-O&D signal: a solid fraction of labels are return flights.
  EXPECT_GT(returns / n, 0.15);
  // Exploration signal: a solid fraction of label origins are unseen.
  EXPECT_GT(unseen_origin / n, 0.10);
}

TEST(FliggySimulatorTest, TrueUtilityPrefersCheaperSameAffinity) {
  FliggySimulator simulator(SmallConfig());
  // Infeasible pairs are strongly penalized.
  EXPECT_LT(simulator.TrueUtility(0, OdPair{0, 0}, 100), -1e8);
}

TEST(FliggySimulatorTest, SplitIsDisjointAndCoversUsers) {
  FliggySimulator simulator(SmallConfig());
  OdDataset dataset = simulator.Generate();
  std::set<int64_t> train_users;
  for (const Sample& s : dataset.train_samples) train_users.insert(s.user);
  for (int64_t u : dataset.test_users) {
    EXPECT_EQ(train_users.count(u), 0u);
  }
  EXPECT_EQ(static_cast<int64_t>(train_users.size() +
                                 dataset.test_users.size()),
            dataset.num_users);
}

// ------------------------------------------------------- LbsnSimulator --

TEST(LbsnSimulatorTest, GeneratesConsistentCounts) {
  LbsnSimulator simulator(LbsnConfig::FoursquarePreset(3));
  LbsnDataset dataset = simulator.Generate();
  EXPECT_EQ(dataset.num_users,
            static_cast<int64_t>(dataset.sequences.size()));
  int64_t total = 0;
  for (const auto& seq : dataset.sequences) {
    EXPECT_GE(seq.size(), 4u);
    total += static_cast<int64_t>(seq.size());
    for (size_t i = 1; i < seq.size(); ++i) {
      EXPECT_LE(seq[i - 1].day, seq[i].day);
    }
    for (const CheckIn& c : seq) {
      EXPECT_GE(c.poi, 0);
      EXPECT_LT(c.poi, dataset.num_pois);
    }
  }
  EXPECT_EQ(dataset.num_checkins, total);
}

TEST(LbsnSimulatorTest, PresetsDifferInShape) {
  LbsnDataset foursquare =
      LbsnSimulator(LbsnConfig::FoursquarePreset(3)).Generate();
  LbsnDataset gowalla = LbsnSimulator(LbsnConfig::GowallaPreset(3)).Generate();
  EXPECT_LT(foursquare.num_pois, gowalla.num_pois);
  double fs_density = static_cast<double>(foursquare.num_checkins) /
                      static_cast<double>(foursquare.num_users);
  double gw_density = static_cast<double>(gowalla.num_checkins) /
                      static_cast<double>(gowalla.num_users);
  EXPECT_GT(fs_density, gw_density);
}

TEST(LbsnSimulatorTest, PopularityIsSkewed) {
  LbsnDataset dataset =
      LbsnSimulator(LbsnConfig::FoursquarePreset(5)).Generate();
  std::vector<int64_t> counts(static_cast<size_t>(dataset.num_pois), 0);
  for (const auto& seq : dataset.sequences) {
    for (const CheckIn& c : seq) counts[static_cast<size_t>(c.poi)]++;
  }
  std::sort(counts.rbegin(), counts.rend());
  int64_t top_decile = 0;
  int64_t total = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i < counts.size() / 10) top_decile += counts[i];
    total += counts[i];
  }
  // Zipf-ish: top 10% of POIs take far more than 10% of check-ins.
  EXPECT_GT(static_cast<double>(top_decile) / static_cast<double>(total),
            0.3);
}

// --------------------------------------------------------- LbsnAdapter --

TEST(LbsnAdapterTest, HoldsOutFinalCheckIn) {
  LbsnDataset lbsn = LbsnSimulator(LbsnConfig::FoursquarePreset(3)).Generate();
  OdDataset dataset = LbsnToOdDataset(lbsn, LbsnAdapterOptions{});
  EXPECT_EQ(dataset.num_users, lbsn.num_users);
  EXPECT_EQ(dataset.num_cities, lbsn.num_pois);
  for (int64_t u = 0; u < dataset.num_users; ++u) {
    const UserHistory& h = dataset.histories[static_cast<size_t>(u)];
    const auto& seq = lbsn.sequences[static_cast<size_t>(u)];
    EXPECT_EQ(h.long_term.size(), seq.size() - 1);
    EXPECT_EQ(h.next_booking.destination, seq.back().poi);
    // Degenerate OD pairs (no origin information).
    EXPECT_EQ(h.next_booking.origin, h.next_booking.destination);
    for (const Booking& b : h.long_term) {
      EXPECT_EQ(b.od.origin, b.od.destination);
    }
  }
}

TEST(LbsnAdapterTest, NegativesNeverEqualPositive) {
  LbsnDataset lbsn = LbsnSimulator(LbsnConfig::FoursquarePreset(3)).Generate();
  OdDataset dataset = LbsnToOdDataset(lbsn, LbsnAdapterOptions{});
  for (const Sample& s : dataset.train_samples) {
    const UserHistory& h = dataset.histories[static_cast<size_t>(s.user)];
    if (s.kind == SampleKind::kNegNeg) {
      EXPECT_NE(s.candidate.destination, h.next_booking.destination);
    }
  }
}

// ---------------------------------------------------- TemporalFeatures --

TEST(TemporalFeatureTest, CountsUserRoleInteractions) {
  OdDataset dataset;
  dataset.num_users = 1;
  dataset.num_cities = 5;
  UserHistory h;
  h.user = 0;
  h.current_city = 0;
  h.decision_day = 100;
  h.long_term = {{{1, 2}, 80}, {{1, 3}, 90}, {{2, 1}, 95}};
  h.short_term = {{{1, 2}, 98}, {{4, 2}, 99}};
  dataset.histories.push_back(h);
  TemporalFeatureIndex index(dataset, 5, 200);

  // City 1 as origin: 2 own departures; 1 click with origin 1.
  auto f = index.OriginFeatures(h, 1);
  EXPECT_NEAR(f[2], std::log1p(2.0), 1e-5);
  EXPECT_NEAR(f[3], std::log1p(1.0), 1e-5);
  // City 2 as destination: 1 own arrival... plus global counts.
  auto g = index.DestinationFeatures(h, 2);
  EXPECT_NEAR(g[2], std::log1p(1.0), 1e-5);
  EXPECT_NEAR(g[3], std::log1p(2.0), 1e-5);
}

TEST(TemporalFeatureTest, TrailingMonthWindow) {
  OdDataset dataset;
  dataset.num_users = 2;
  dataset.num_cities = 3;
  UserHistory a;
  a.user = 0;
  a.decision_day = 100;
  a.long_term = {{{1, 2}, 85}};  // inside [70, 99]
  UserHistory b;
  b.user = 1;
  b.decision_day = 100;
  b.long_term = {{{1, 2}, 10}};  // far outside the window
  dataset.histories = {a, b};
  TemporalFeatureIndex index(dataset, 3, 200);
  auto f = index.OriginFeatures(a, 1);
  // Only one global departure from city 1 falls in the trailing month.
  EXPECT_NEAR(f[0], std::log1p(1.0), 1e-5);
}

TEST(TemporalFeatureTest, NoLabelLeakage) {
  // Features must come from histories only: decision-day bookings (the
  // labels) are never in long_term, so a city visited only as the label
  // contributes nothing.
  FliggySimulator simulator(SmallConfig());
  OdDataset dataset = simulator.Generate();
  TemporalFeatureIndex index(dataset, dataset.num_cities, 800);
  (void)index;  // construction itself must not touch next_booking
  SUCCEED();
}

// ----------------------------------------------------------- Encoding --

TEST(BatchEncoderTest, PadsAndAlignsSequences) {
  FliggySimulator simulator(SmallConfig());
  OdDataset dataset = simulator.Generate();
  TemporalFeatureIndex temporal(dataset, dataset.num_cities, 800);
  BatchEncoder encoder(&dataset, &temporal, SequenceSpec{8, 4});

  TaskBatch batch = encoder.EncodeOrigin(dataset.train_samples, 0, 16);
  EXPECT_EQ(batch.batch, 16);
  EXPECT_EQ(batch.long_seq.size(), 16u * 8u);
  EXPECT_EQ(batch.xst.size(), 16u * TemporalFeatureIndex::kDim);
  for (int64_t row = 0; row < batch.batch; ++row) {
    // Padding is at the front: once a real element appears, the rest of
    // the row is real.
    bool seen_real = false;
    for (int64_t i = 0; i < batch.t_long; ++i) {
      float pad = batch.long_pad[static_cast<size_t>(row * 8 + i)];
      if (pad > 0.5f) seen_real = true;
      if (seen_real) EXPECT_GT(pad, 0.5f);
    }
    EXPECT_TRUE(seen_real);
  }
}

TEST(BatchEncoderTest, RoleViewsProjectCorrectCity) {
  FliggySimulator simulator(SmallConfig());
  OdDataset dataset = simulator.Generate();
  BatchEncoder encoder(&dataset, nullptr, SequenceSpec{10, 5});
  OdBatch batch = encoder.EncodeJoint(dataset.train_samples, 0, 8);
  for (int64_t row = 0; row < 8; ++row) {
    const Sample& s = dataset.train_samples[static_cast<size_t>(row)];
    EXPECT_EQ(batch.origin.candidate[static_cast<size_t>(row)],
              s.candidate.origin);
    EXPECT_EQ(batch.destination.candidate[static_cast<size_t>(row)],
              s.candidate.destination);
    EXPECT_EQ(batch.origin.labels[static_cast<size_t>(row)], s.label_o);
    EXPECT_EQ(batch.destination.labels[static_cast<size_t>(row)], s.label_d);

    // The last real long-term element matches the user's last booking in
    // the right role.
    const UserHistory& h = dataset.histories[static_cast<size_t>(s.user)];
    EXPECT_EQ(batch.origin.long_seq[static_cast<size_t>(row * 10 + 9)],
              h.long_term.back().od.origin);
    EXPECT_EQ(batch.destination.long_seq[static_cast<size_t>(row * 10 + 9)],
              h.long_term.back().od.destination);
  }
}

TEST(BatchEncoderTest, AdditiveMaskMatchesPad) {
  std::vector<float> pad{1.0f, 0.0f, 1.0f};
  auto mask = TaskBatch::AdditiveMask(pad);
  EXPECT_EQ(mask[0], 0.0f);
  EXPECT_LT(mask[1], -1e8f);
  EXPECT_EQ(mask[2], 0.0f);
}

TEST(BatchEncoderTest, NullTemporalIndexGivesZeroXst) {
  FliggySimulator simulator(SmallConfig());
  OdDataset dataset = simulator.Generate();
  BatchEncoder encoder(&dataset, nullptr, SequenceSpec{4, 2});
  TaskBatch batch = encoder.EncodeOrigin(dataset.train_samples, 0, 4);
  for (float v : batch.xst) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace data
}  // namespace odnet
