// Concurrency stress tests, written to run under ThreadSanitizer
// (-DODNET_SANITIZE=thread, ctest -L sanitizer). They hammer the three
// places where threads meet shared state:
//
//  - util::ThreadPool: cross-thread Submit, nested fork-joins, exceptions
//    racing from several workers at once;
//  - tensor::ComputeContext: kernels running while another thread
//    reconfigures the pool (SetNumThreads retires a pool generation that
//    in-flight kernels still hold via shared_pool());
//  - serving::ScoreChunked: concurrent chunked scoring against pool
//    reconfiguration;
//  - serving::ServingRouter: concurrent submitters racing queue shutdown,
//    admission-control shedding against a deterministically full queue, and
//    TTL feature-cache expiry racing lookups.
//
// The tests also assert the determinism contract *while* the pool is being
// resized under them: results must stay bitwise identical to a serial run.

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/baselines/most_pop.h"
#include "src/baselines/odnet_recommender.h"
#include "src/core/config.h"
#include "src/data/fliggy_simulator.h"
#include "src/nn/module.h"
#include "src/nn/serialization.h"
#include "src/nn/sharded_embedding.h"
#include "src/optim/sharded_adam.h"
#include "src/tensor/grad_delta.h"
#include "src/serving/batch_scorer.h"
#include "src/serving/feature_cache.h"
#include "src/serving/ranking_service.h"
#include "src/serving/recall.h"
#include "src/serving/serving_router.h"
#include "src/util/status.h"
#include "src/tensor/compute_context.h"
#include "src/tensor/graph_plan.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace odnet {
namespace {

using tensor::Backend;
using tensor::BackendGuard;
using tensor::ComputeContext;
using tensor::Tensor;

class ComputeConfigGuard {
 public:
  ComputeConfigGuard()
      : threads_(ComputeContext::Get().num_threads()),
        threshold_(ComputeContext::Get().parallel_threshold()) {}
  ~ComputeConfigGuard() {
    ComputeContext::Get().SetNumThreads(threads_);
    ComputeContext::Get().SetParallelThreshold(threshold_);
  }

 private:
  int threads_;
  int64_t threshold_;
};

// A small forward+backward graph touching the parallel kernel families;
// returns all forward values and gradients flattened.
std::vector<float> RunSmallGraph() {
  util::Rng rng(404);
  Tensor a = Tensor::Randn({6, 8}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({8, 4}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor bias = Tensor::Randn({1, 4}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor h = tensor::Tanh(tensor::Add(tensor::MatMul(a, b), bias));
  Tensor y = tensor::Softmax(h);
  Tensor loss = tensor::Sum(tensor::Mul(y, h));
  a.ZeroGrad();
  b.ZeroGrad();
  bias.ZeroGrad();
  loss.Backward();
  std::vector<float> out = y.vec();
  out.push_back(loss.item());
  out.insert(out.end(), a.grad().begin(), a.grad().end());
  out.insert(out.end(), b.grad().begin(), b.grad().end());
  out.insert(out.end(), bias.grad().begin(), bias.grad().end());
  return out;
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolStressTest, SubmitFromManyThreads) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &counter] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.Submit([&counter] { counter++; }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolStressTest, NestedParallelForStorm) {
  util::ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int64_t> total{0};
    pool.ParallelFor(12, [&pool, &total](int64_t) {
      pool.ParallelFor(12, [&total](int64_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 144) << "round " << round;
  }
}

TEST(ThreadPoolStressTest, RacingExceptionsExactlyOnePropagates) {
  util::ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    int caught = 0;
    try {
      // Every index throws: several workers race to set the first
      // exception; exactly one must reach the caller.
      pool.ParallelFor(64, [](int64_t i) {
        throw std::runtime_error("worker " + std::to_string(i));
      });
    } catch (const std::runtime_error&) {
      caught++;
    }
    EXPECT_EQ(caught, 1) << "round " << round;
    // The pool must come back clean after the pile-up.
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(8, [&sum](int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 28) << "round " << round;
  }
}

// -------------------------------------------------------- ComputeContext --

TEST(ComputeContextStressTest, KernelsSurvivePoolReconfiguration) {
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  ctx.SetParallelThreshold(1);  // force parallel dispatch for tiny tensors
  ctx.SetNumThreads(1);
  const std::vector<float> expected = RunSmallGraph();

  // One thread continuously retires pool generations while compute threads
  // run kernels that hold the previous generation via shared_pool().
  std::atomic<bool> stop{false};
  std::thread reconfig([&stop] {
    int n = 0;
    while (!stop.load()) {
      ComputeContext::Get().SetNumThreads(1 + (n++ % 4));
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> compute;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 2; ++t) {
    compute.emplace_back([&mismatches, &expected] {
      for (int iter = 0; iter < 30; ++iter) {
        if (RunSmallGraph() != expected) mismatches++;
      }
    });
  }
  for (auto& t : compute) t.join();
  stop = true;
  reconfig.join();
  // Determinism holds even while the pool is resized mid-run.
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ComputeContextStressTest, BackendSelectionIsThreadLocal) {
  ComputeConfigGuard guard;
  ComputeContext::Get().SetNumThreads(4);
  ComputeContext::Get().SetParallelThreshold(1);
  std::atomic<bool> leaked{false};
  std::thread oracle_thread([&leaked] {
    BackendGuard reference(Backend::kReference);
    for (int i = 0; i < 20; ++i) {
      RunSmallGraph();
      if (ComputeContext::backend() != Backend::kReference) leaked = true;
    }
  });
  // This thread must keep seeing the optimized backend throughout.
  for (int i = 0; i < 20; ++i) {
    RunSmallGraph();
    if (ComputeContext::backend() != Backend::kOptimized) leaked = true;
  }
  oracle_thread.join();
  EXPECT_FALSE(leaked.load());
  EXPECT_EQ(ComputeContext::backend(), Backend::kOptimized);
}

// -------------------------------------------------------------- GraphPlan --

TEST(GraphPlanStressTest, ConcurrentReplayOnSharedPlanUnderReconfiguration) {
  // A pure-tensor plan (no host stages) is immutable after capture; replay
  // threads share it but each brings its own Buffers via NewBuffers().
  // TSan validates that ReplayOn touches no shared mutable state, while a
  // reconfiguration thread retires pool generations under the kernels.
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  ctx.SetNumThreads(1);
  ctx.SetParallelThreshold(1);  // force parallel dispatch for tiny tensors

  util::Rng rng(7171);
  Tensor x = Tensor::Randn({6, 8}, &rng);
  Tensor w1 = Tensor::Randn({8, 16}, &rng);
  Tensor w2 = Tensor::Randn({16, 4}, &rng);
  std::vector<Tensor> captured;
  std::shared_ptr<tensor::GraphPlan> plan =
      tensor::GraphPlan::CaptureInference(
          [&x, &w1, &w2]() {
            Tensor h = tensor::Tanh(tensor::MatMul(x, w1));
            return std::vector<Tensor>{
                tensor::Softmax(tensor::MatMul(h, w2))};
          },
          &captured, {x});
  ASSERT_FALSE(plan->has_host_stages());
  const std::vector<float> expected = captured[0].vec();

  std::atomic<bool> stop{false};
  std::thread reconfig([&stop] {
    int n = 0;
    while (!stop.load()) {
      ComputeContext::Get().SetNumThreads(1 + (n++ % 4));
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> replayers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    replayers.emplace_back([&plan, &x, &expected, &mismatches] {
      std::unique_ptr<tensor::GraphPlan::Buffers> buffers =
          plan->NewBuffers();
      for (int iter = 0; iter < 30; ++iter) {
        const std::vector<Tensor>& out = plan->ReplayOn(buffers.get(), {x});
        if (out[0].vec() != expected) mismatches++;
      }
    });
  }
  for (auto& t : replayers) t.join();
  stop = true;
  reconfig.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------- ScoreChunked --

TEST(ScoreChunkedStressTest, ConcurrentScoringUnderReconfiguration) {
  data::FliggyConfig config;
  config.num_users = 120;
  config.num_cities = 20;
  config.seed = 61;
  data::FliggySimulator simulator(config);
  data::OdDataset dataset = simulator.Generate();
  baselines::MostPop method;
  ASSERT_TRUE(method.Fit(dataset).ok());

  std::vector<data::Sample> rows;
  while (rows.size() < 600) {
    for (const data::Sample& s : dataset.train_samples) {
      rows.push_back(s);
      if (rows.size() >= 600) break;
    }
  }
  const std::vector<baselines::OdScore> expected = method.Score(dataset, rows);

  ComputeConfigGuard guard;
  ComputeContext::Get().SetNumThreads(4);
  std::atomic<bool> stop{false};
  std::thread reconfig([&stop] {
    int n = 0;
    while (!stop.load()) {
      ComputeContext::Get().SetNumThreads(1 + (n++ % 4));
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> scorers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 2; ++t) {
    scorers.emplace_back([&] {
      for (int iter = 0; iter < 10; ++iter) {
        std::vector<baselines::OdScore> got =
            serving::ScoreChunked(&method, dataset, rows);
        if (got.size() != expected.size()) {
          mismatches++;
          continue;
        }
        for (size_t i = 0; i < got.size(); ++i) {
          if (got[i].p_o != expected[i].p_o || got[i].p_d != expected[i].p_d) {
            mismatches++;
            break;
          }
        }
      }
    });
  }
  for (auto& t : scorers) t.join();
  stop = true;
  reconfig.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ----------------------------------------------------------- ServingRouter --

/// Shared serving stack for the router stress tests. Owns the dataset, the
/// fitted model, recall, and the ranking service the routers wrap.
struct RouterStressFixture {
  RouterStressFixture() : simulator(MakeConfig()), dataset(simulator.Generate()) {
    EXPECT_TRUE(method.Fit(dataset).ok());
    recall = std::make_unique<serving::CandidateRecall>(
        &dataset, &simulator.atlas(), serving::RecallOptions());
    service = std::make_unique<serving::RankingService>(&method, &dataset,
                                                        recall.get());
  }
  static data::FliggyConfig MakeConfig() {
    data::FliggyConfig config;
    config.num_users = 80;
    config.num_cities = 15;
    config.seed = 73;
    return config;
  }
  data::FliggySimulator simulator;
  data::OdDataset dataset;
  baselines::MostPop method;
  std::unique_ptr<serving::CandidateRecall> recall;
  std::unique_ptr<serving::RankingService> service;
};

/// Blocks every Score() call until Open(); see serving_router_test.cc. Lets
/// the stress tests pin the dispatcher mid-batch so the bounded queue is
/// deterministically full when the submitter threads hammer it.
class BlockingScorer : public baselines::OdRecommender {
 public:
  explicit BlockingScorer(baselines::OdRecommender* inner) : inner_(inner) {}

  std::string name() const override { return "Blocking"; }
  util::Status Fit(const data::OdDataset& dataset) override {
    return inner_->Fit(dataset);
  }
  bool ThreadSafeScore() const override { return true; }
  std::vector<baselines::OdScore> Score(
      const data::OdDataset& dataset,
      const std::vector<data::Sample>& samples) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entries_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return open_; });
    }
    return inner_->Score(dataset, samples);
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  void AwaitEntries(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this, n] { return entries_ >= n; });
  }

 private:
  baselines::OdRecommender* inner_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
  int entries_ = 0;
};

TEST(ServingRouterStressTest, SubmittersRacingShutdown) {
  RouterStressFixture fixture;
  serving::RouterOptions options;
  options.num_workers = 2;
  options.max_batch_rows = 64;
  options.batch_deadline_us = 100;
  options.queue_capacity = 64;
  serving::ServingRouter router(fixture.service.get(), options);

  // Four submitter threads race a Shutdown() triggered partway through the
  // submission stream. Every future must resolve: either a served list or
  // one of the two typed refusals — never a hang, never a dropped promise.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int64_t> submitted{0};
  std::atomic<int64_t> served{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> refused{0};
  std::atomic<int64_t> unexpected{0};
  std::thread shutdown_thread([&] {
    while (submitted.load() < kThreads * kPerThread / 2) {
      std::this_thread::yield();
    }
    router.Shutdown();
  });
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t user = (t * kPerThread + i) % fixture.dataset.num_users;
        std::future<serving::TopKResult> future = router.SubmitTopK(user, 5);
        submitted.fetch_add(1);
        serving::TopKResult result = future.get();
        if (result.ok()) {
          served.fetch_add(1);
          // Served lists must still honour the deterministic ranking order.
          const std::vector<serving::RankedFlight>& list = result.value();
          for (size_t j = 1; j < list.size(); ++j) {
            if (serving::FlightBefore(list[j], list[j - 1])) {
              unexpected.fetch_add(1);
            }
          }
        } else if (result.status().code() == util::StatusCode::kUnavailable) {
          shed.fetch_add(1);
        } else if (result.status().code() ==
                   util::StatusCode::kFailedPrecondition) {
          refused.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  shutdown_thread.join();
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_EQ(served.load() + shed.load() + refused.load(),
            kThreads * kPerThread);
  EXPECT_GT(served.load(), 0);
  EXPECT_GT(refused.load(), 0) << "shutdown landed after every submission";
}

TEST(ServingRouterStressTest, AdmissionControlShedsAgainstFullQueue) {
  RouterStressFixture fixture;
  BlockingScorer blocking(&fixture.method);
  serving::RankingService gated_service(&blocking, &fixture.dataset,
                                        fixture.recall.get());
  serving::RouterOptions options;
  options.num_workers = 1;
  options.max_batch_rows = 1;  // one request per batch
  options.batch_deadline_us = 0;
  options.queue_capacity = 4;
  serving::ServingRouter router(&gated_service, options);

  // Pin the single dispatcher inside a gated batch, so the queue cannot
  // drain while the submitters flood it.
  std::future<serving::TopKResult> pinned = router.SubmitTopK(0, 5);
  blocking.AwaitEntries(1);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::future<serving::TopKResult>> futures(kThreads * kPerThread);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t user = 1 + ((t * kPerThread + i) %
                                  (fixture.dataset.num_users - 1));
        futures[static_cast<size_t>(t * kPerThread + i)] =
            router.SubmitTopK(user, 5);
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  // With the dispatcher pinned, at most queue_capacity submissions can have
  // been admitted; everything else must shed with the typed error.
  blocking.Open();
  int64_t served = 0;
  int64_t shed = 0;
  for (std::future<serving::TopKResult>& f : futures) {
    serving::TopKResult result = f.get();
    if (result.ok()) {
      served++;
    } else {
      EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
      shed++;
    }
  }
  EXPECT_TRUE(pinned.get().ok());
  EXPECT_EQ(served + shed, kThreads * kPerThread);
  EXPECT_LE(served, options.queue_capacity);
  EXPECT_GE(shed, kThreads * kPerThread - options.queue_capacity);
}

TEST(TtlCacheStressTest, ExpiryRacingLookups) {
  // Readers look up and re-insert while a clock thread sweeps entries past
  // their TTL under them. TSan checks the shard locking; the value checks
  // confirm a reader never observes a torn snapshot.
  std::atomic<int64_t> now{0};
  serving::TtlCache<std::vector<int64_t>>::Options options;
  options.capacity = 64;
  options.ttl_ns = 50;
  options.clock = [&now] { return now.load(); };
  serving::TtlCache<std::vector<int64_t>> cache(options);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn{0};
  std::thread clock_thread([&] {
    for (int i = 0; i < 400 && !stop.load(); ++i) {
      now.fetch_add(10);
      std::this_thread::yield();
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      util::Rng rng(900 + static_cast<uint64_t>(t));
      while (!stop.load()) {
        const int64_t key = rng.UniformInt(0, 15);
        std::shared_ptr<const std::vector<int64_t>> hit = cache.Lookup(key);
        if (hit == nullptr) {
          cache.Insert(key, std::vector<int64_t>{key, key * 2});
        } else if (hit->size() != 2 || (*hit)[0] != key ||
                   (*hit)[1] != key * 2) {
          torn.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  clock_thread.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_LE(cache.size(), options.capacity);
}

// ------------------------------------------- Sharded parameter server --

// Minimal module shape for checkpoint-vs-apply races: one row-sharded
// table, one whole-param bias.
class ShardedCheckpointModule : public nn::Module {
 public:
  ShardedCheckpointModule() {
    table_ = RegisterParameter(
        "table", Tensor::FromVector({64, 8}, std::vector<float>(512, 0.25f),
                                    /*requires_grad=*/true));
    bias_ = RegisterParameter(
        "bias", Tensor::FromVector({8}, std::vector<float>(8, 0.5f),
                                   /*requires_grad=*/true));
  }

  tensor::Tensor table_;
  tensor::Tensor bias_;
};

TEST(ShardedStoreStressTest, ShardAppliesRacingCheckpointSnapshot) {
  // The checkpoint snapshot contract (DESIGN.md §15): SaveParameters with a
  // store holds every shard mutex, and appliers mutate rows only under
  // their owning shard's mutex — so concurrent applies and snapshots are
  // race-free and no snapshot can observe a torn row.
  ShardedCheckpointModule module;
  nn::ShardedEmbeddingStore::Options opts;
  opts.num_shards = 4;
  nn::ShardedEmbeddingStore store(module.Parameters(), opts);
  optim::ShardedAdam opt(&store, 0.01);

  tensor::GradDelta table_delta;
  table_delta.row_sparse = true;
  table_delta.width = 8;
  for (int64_t r = 0; r < 64; ++r) table_delta.rows.push_back(r);
  table_delta.values.assign(512, 0.01f);
  tensor::GradDelta bias_delta;
  bias_delta.values.assign(8, 0.01f);

  std::vector<std::thread> appliers;
  for (int s = 0; s < 4; ++s) {
    appliers.emplace_back([&opt, &table_delta, &bias_delta, s]() {
      for (int64_t step = 1; step <= 200; ++step) {
        opt.ApplyDeltaShard(0, s, table_delta, step);
        opt.ApplyDeltaShard(1, s, bias_delta, step);
      }
    });
  }
  const std::string path =
      testing::TempDir() + "/sharded_ckpt_race.bin";
  for (int i = 0; i < 25; ++i) {
    util::Status st = nn::SaveParameters(module, path, &store);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  for (std::thread& t : appliers) t.join();

  ShardedCheckpointModule restored;
  util::Status st = nn::LoadParameters(&restored, path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (float v : restored.table_.vec()) ASSERT_TRUE(std::isfinite(v));
}

TEST(ShardedStoreStressTest, CasRowAppliesConcurrentExactlyOnce) {
  // The lock-free SGD path: per-element CAS on the float bits. With
  // integer-valued floats every subtraction is exact, so exactly-once
  // delivery shows up as an exact final value under any interleaving.
  constexpr int64_t kRows = 16;
  constexpr int64_t kWidth = 4;
  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  Tensor table = Tensor::FromVector(
      {kRows, kWidth}, std::vector<float>(kRows * kWidth, 0.0f));
  nn::ShardedEmbeddingStore::Options opts;
  opts.num_shards = 2;
  nn::ShardedEmbeddingStore store({table}, opts);
  const std::vector<float> g(kWidth, 1.0f);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &g]() {
      for (int i = 0; i < kIters; ++i) {
        for (int64_t row = 0; row < kRows; ++row) {
          store.ApplySgdRowCas(0, row, g.data(), 1.0f);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (float v : table.vec()) {
    EXPECT_EQ(v, -static_cast<float>(kThreads * kIters));
  }
}

TEST(DataParallelTrainerStressTest, SyncTrainingIsRaceFree) {
  // End-to-end sync-mode data-parallel training: gang workers with private
  // gradient replicas, slice-order reduction, shard-parallel Adam applies.
  // Everything is either thread-private, behind a barrier, or under a
  // shard mutex — this must be TSan-clean.
  data::FliggyConfig dc;
  dc.num_users = 40;
  dc.num_cities = 12;
  dc.seed = 5;
  data::FliggySimulator simulator(dc);
  data::OdDataset dataset = simulator.Generate();
  core::OdnetConfig mc;
  mc.embed_dim = 8;
  mc.num_heads = 2;
  mc.expert_dim = 16;
  mc.tower_hidden = 8;
  mc.batch_size = 32;
  mc.epochs = 1;
  mc.seed = 3;
  mc.train_workers = 2;
  mc.embedding_shards = 2;
  baselines::OdnetRecommender odnet("ODNET-ps-stress", &simulator.atlas(),
                                    mc);
  util::Status status = odnet.Fit(dataset);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(std::isfinite(odnet.train_stats().final_epoch_loss));
}

}  // namespace
}  // namespace odnet
