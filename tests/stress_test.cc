// Concurrency stress tests, written to run under ThreadSanitizer
// (-DODNET_SANITIZE=thread, ctest -L sanitizer). They hammer the three
// places where threads meet shared state:
//
//  - util::ThreadPool: cross-thread Submit, nested fork-joins, exceptions
//    racing from several workers at once;
//  - tensor::ComputeContext: kernels running while another thread
//    reconfigures the pool (SetNumThreads retires a pool generation that
//    in-flight kernels still hold via shared_pool());
//  - serving::ScoreChunked: concurrent chunked scoring against pool
//    reconfiguration.
//
// The tests also assert the determinism contract *while* the pool is being
// resized under them: results must stay bitwise identical to a serial run.

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/baselines/most_pop.h"
#include "src/data/fliggy_simulator.h"
#include "src/serving/batch_scorer.h"
#include "src/tensor/compute_context.h"
#include "src/tensor/graph_plan.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace odnet {
namespace {

using tensor::Backend;
using tensor::BackendGuard;
using tensor::ComputeContext;
using tensor::Tensor;

class ComputeConfigGuard {
 public:
  ComputeConfigGuard()
      : threads_(ComputeContext::Get().num_threads()),
        threshold_(ComputeContext::Get().parallel_threshold()) {}
  ~ComputeConfigGuard() {
    ComputeContext::Get().SetNumThreads(threads_);
    ComputeContext::Get().SetParallelThreshold(threshold_);
  }

 private:
  int threads_;
  int64_t threshold_;
};

// A small forward+backward graph touching the parallel kernel families;
// returns all forward values and gradients flattened.
std::vector<float> RunSmallGraph() {
  util::Rng rng(404);
  Tensor a = Tensor::Randn({6, 8}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({8, 4}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor bias = Tensor::Randn({1, 4}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor h = tensor::Tanh(tensor::Add(tensor::MatMul(a, b), bias));
  Tensor y = tensor::Softmax(h);
  Tensor loss = tensor::Sum(tensor::Mul(y, h));
  a.ZeroGrad();
  b.ZeroGrad();
  bias.ZeroGrad();
  loss.Backward();
  std::vector<float> out = y.vec();
  out.push_back(loss.item());
  out.insert(out.end(), a.grad().begin(), a.grad().end());
  out.insert(out.end(), b.grad().begin(), b.grad().end());
  out.insert(out.end(), bias.grad().begin(), bias.grad().end());
  return out;
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolStressTest, SubmitFromManyThreads) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &counter] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.Submit([&counter] { counter++; }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolStressTest, NestedParallelForStorm) {
  util::ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int64_t> total{0};
    pool.ParallelFor(12, [&pool, &total](int64_t) {
      pool.ParallelFor(12, [&total](int64_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 144) << "round " << round;
  }
}

TEST(ThreadPoolStressTest, RacingExceptionsExactlyOnePropagates) {
  util::ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    int caught = 0;
    try {
      // Every index throws: several workers race to set the first
      // exception; exactly one must reach the caller.
      pool.ParallelFor(64, [](int64_t i) {
        throw std::runtime_error("worker " + std::to_string(i));
      });
    } catch (const std::runtime_error&) {
      caught++;
    }
    EXPECT_EQ(caught, 1) << "round " << round;
    // The pool must come back clean after the pile-up.
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(8, [&sum](int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 28) << "round " << round;
  }
}

// -------------------------------------------------------- ComputeContext --

TEST(ComputeContextStressTest, KernelsSurvivePoolReconfiguration) {
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  ctx.SetParallelThreshold(1);  // force parallel dispatch for tiny tensors
  ctx.SetNumThreads(1);
  const std::vector<float> expected = RunSmallGraph();

  // One thread continuously retires pool generations while compute threads
  // run kernels that hold the previous generation via shared_pool().
  std::atomic<bool> stop{false};
  std::thread reconfig([&stop] {
    int n = 0;
    while (!stop.load()) {
      ComputeContext::Get().SetNumThreads(1 + (n++ % 4));
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> compute;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 2; ++t) {
    compute.emplace_back([&mismatches, &expected] {
      for (int iter = 0; iter < 30; ++iter) {
        if (RunSmallGraph() != expected) mismatches++;
      }
    });
  }
  for (auto& t : compute) t.join();
  stop = true;
  reconfig.join();
  // Determinism holds even while the pool is resized mid-run.
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ComputeContextStressTest, BackendSelectionIsThreadLocal) {
  ComputeConfigGuard guard;
  ComputeContext::Get().SetNumThreads(4);
  ComputeContext::Get().SetParallelThreshold(1);
  std::atomic<bool> leaked{false};
  std::thread oracle_thread([&leaked] {
    BackendGuard reference(Backend::kReference);
    for (int i = 0; i < 20; ++i) {
      RunSmallGraph();
      if (ComputeContext::backend() != Backend::kReference) leaked = true;
    }
  });
  // This thread must keep seeing the optimized backend throughout.
  for (int i = 0; i < 20; ++i) {
    RunSmallGraph();
    if (ComputeContext::backend() != Backend::kOptimized) leaked = true;
  }
  oracle_thread.join();
  EXPECT_FALSE(leaked.load());
  EXPECT_EQ(ComputeContext::backend(), Backend::kOptimized);
}

// -------------------------------------------------------------- GraphPlan --

TEST(GraphPlanStressTest, ConcurrentReplayOnSharedPlanUnderReconfiguration) {
  // A pure-tensor plan (no host stages) is immutable after capture; replay
  // threads share it but each brings its own Buffers via NewBuffers().
  // TSan validates that ReplayOn touches no shared mutable state, while a
  // reconfiguration thread retires pool generations under the kernels.
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  ctx.SetNumThreads(1);
  ctx.SetParallelThreshold(1);  // force parallel dispatch for tiny tensors

  util::Rng rng(7171);
  Tensor x = Tensor::Randn({6, 8}, &rng);
  Tensor w1 = Tensor::Randn({8, 16}, &rng);
  Tensor w2 = Tensor::Randn({16, 4}, &rng);
  std::vector<Tensor> captured;
  std::shared_ptr<tensor::GraphPlan> plan =
      tensor::GraphPlan::CaptureInference(
          [&x, &w1, &w2]() {
            Tensor h = tensor::Tanh(tensor::MatMul(x, w1));
            return std::vector<Tensor>{
                tensor::Softmax(tensor::MatMul(h, w2))};
          },
          &captured, {x});
  ASSERT_FALSE(plan->has_host_stages());
  const std::vector<float> expected = captured[0].vec();

  std::atomic<bool> stop{false};
  std::thread reconfig([&stop] {
    int n = 0;
    while (!stop.load()) {
      ComputeContext::Get().SetNumThreads(1 + (n++ % 4));
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> replayers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    replayers.emplace_back([&plan, &x, &expected, &mismatches] {
      std::unique_ptr<tensor::GraphPlan::Buffers> buffers =
          plan->NewBuffers();
      for (int iter = 0; iter < 30; ++iter) {
        const std::vector<Tensor>& out = plan->ReplayOn(buffers.get(), {x});
        if (out[0].vec() != expected) mismatches++;
      }
    });
  }
  for (auto& t : replayers) t.join();
  stop = true;
  reconfig.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------- ScoreChunked --

TEST(ScoreChunkedStressTest, ConcurrentScoringUnderReconfiguration) {
  data::FliggyConfig config;
  config.num_users = 120;
  config.num_cities = 20;
  config.seed = 61;
  data::FliggySimulator simulator(config);
  data::OdDataset dataset = simulator.Generate();
  baselines::MostPop method;
  ASSERT_TRUE(method.Fit(dataset).ok());

  std::vector<data::Sample> rows;
  while (rows.size() < 600) {
    for (const data::Sample& s : dataset.train_samples) {
      rows.push_back(s);
      if (rows.size() >= 600) break;
    }
  }
  const std::vector<baselines::OdScore> expected = method.Score(dataset, rows);

  ComputeConfigGuard guard;
  ComputeContext::Get().SetNumThreads(4);
  std::atomic<bool> stop{false};
  std::thread reconfig([&stop] {
    int n = 0;
    while (!stop.load()) {
      ComputeContext::Get().SetNumThreads(1 + (n++ % 4));
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> scorers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 2; ++t) {
    scorers.emplace_back([&] {
      for (int iter = 0; iter < 10; ++iter) {
        std::vector<baselines::OdScore> got =
            serving::ScoreChunked(&method, dataset, rows);
        if (got.size() != expected.size()) {
          mismatches++;
          continue;
        }
        for (size_t i = 0; i < got.size(); ++i) {
          if (got[i].p_o != expected[i].p_o || got[i].p_d != expected[i].p_d) {
            mismatches++;
            break;
          }
        }
      }
    });
  }
  for (auto& t : scorers) t.join();
  stop = true;
  reconfig.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace odnet
