// Capture/replay execution plans and arena-backed storage (DESIGN.md §10):
//
//  - BufferArena: bump-pointer recycling, generation leases, Reset()
//    invalidation, ArenaScope escape detection (hard CHECK, not UB);
//  - GraphPlan: capture-once/replay-many inference with a liveness-planned
//    buffer assignment, bitwise identical to eager under every backend and
//    thread count, concurrent replay over per-executor buffer sets;
//  - TrainStepPlan: the retained-tape training step, bitwise identical to
//    the eager loop it replaces;
//  - the model/trainer consumers: PredictPlanned's per-shape plan cache
//    (capture on shape change, replay on hit, invalidation) and the
//    capture_train_plan trainer path.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/hsg_builder.h"
#include "src/core/odnet_model.h"
#include "src/core/trainer.h"
#include "src/data/fliggy_simulator.h"
#include "src/data/temporal_features.h"
#include "src/optim/optimizer.h"
#include "src/tensor/buffer_arena.h"
#include "src/tensor/compute_context.h"
#include "src/tensor/graph_plan.h"
#include "src/telemetry/telemetry.h"
#include "src/tensor/ops.h"
#include "src/tensor/plan_optimizer.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace odnet {
namespace {

using tensor::ArenaScope;
using tensor::Backend;
using tensor::BackendGuard;
using tensor::BufferArena;
using tensor::ComputeContext;
using tensor::GraphPlan;
using tensor::Shape;
using tensor::Tensor;
using tensor::TrainStepPlan;

class ComputeConfigGuard {
 public:
  ComputeConfigGuard()
      : threads_(ComputeContext::Get().num_threads()),
        threshold_(ComputeContext::Get().parallel_threshold()) {}
  ~ComputeConfigGuard() {
    ComputeContext::Get().SetNumThreads(threads_);
    ComputeContext::Get().SetParallelThreshold(threshold_);
  }

 private:
  int threads_;
  int64_t threshold_;
};

// ------------------------------------------------------------ BufferArena --

TEST(BufferArenaTest, ResetRecyclesBuffersBySize) {
  BufferArena arena;
  BufferArena::Buffer a = arena.Acquire(16);
  BufferArena::Buffer b = arena.Acquire(16);
  BufferArena::Buffer c = arena.Acquire(8);
  EXPECT_TRUE(a.fresh);
  EXPECT_TRUE(b.fresh);
  EXPECT_TRUE(c.fresh);
  EXPECT_NE(a.storage->data(), b.storage->data());
  const float* a_ptr = a.storage->data();
  const float* c_ptr = c.storage->data();

  arena.Reset();
  BufferArena::Buffer a2 = arena.Acquire(16);
  BufferArena::Buffer c2 = arena.Acquire(8);
  // Recycled in acquisition order, per size pool, without fresh allocation.
  EXPECT_FALSE(a2.fresh);
  EXPECT_FALSE(c2.fresh);
  EXPECT_EQ(a2.storage->data(), a_ptr);
  EXPECT_EQ(c2.storage->data(), c_ptr);

  BufferArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.total_acquires, 5);
  EXPECT_EQ(stats.reuse_hits, 2);
  EXPECT_EQ(stats.live_buffers, 2);
  EXPECT_EQ(stats.bytes_held,
            static_cast<int64_t>((16 + 16 + 8) * sizeof(float)));
}

TEST(BufferArenaTest, ResetInvalidatesOutstandingLeases) {
  BufferArena arena;
  BufferArena::Buffer b = arena.Acquire(4);
  ASSERT_NE(b.lease, nullptr);
  EXPECT_TRUE(b.lease->valid());
  arena.Reset();
  EXPECT_FALSE(b.lease->valid());
  // The next generation's lease is independent of the expired one.
  BufferArena::Buffer b2 = arena.Acquire(4);
  EXPECT_TRUE(b2.lease->valid());
  EXPECT_FALSE(b.lease->valid());
}

TEST(ArenaScopeTest, OpResultsLeaseFromScopedArena) {
  BufferArena arena;
  {
    ArenaScope scope(&arena);
    Tensor a = Tensor::Full({4, 4}, 2.0f);
    Tensor b = Tensor::Full({4, 4}, 3.0f);
    Tensor sum = tensor::Add(a, b);
    EXPECT_EQ(sum.data()[0], 5.0f);
    // Factory tensors own their storage; op results lease from the arena.
    EXPECT_EQ(a.impl()->lease, nullptr);
    ASSERT_NE(sum.impl()->lease, nullptr);
    EXPECT_TRUE(sum.impl()->lease->valid());
  }
  EXPECT_EQ(tensor::CurrentArena(), nullptr);
  EXPECT_GT(arena.stats().generation, 0u);
}

TEST(ArenaScopeTest, EscapedOpResultDiesOnAccess) {
  Tensor escaped;
  BufferArena arena;
  {
    ArenaScope scope(&arena);
    escaped = tensor::Mul(Tensor::Full({3}, 2.0f), Tensor::Full({3}, 4.0f));
    EXPECT_EQ(escaped.data()[1], 8.0f);  // alive inside the scope
  }
  EXPECT_DEATH(escaped.data(), "outlived its arena generation");
}

TEST(ArenaScopeTest, EscapedReshapeViewDiesOnAccess) {
  // A zero-copy view shares the leased storage, so a view that outlives the
  // arena reset must die as loudly as the tensor it aliases (satellite of
  // ISSUE: views pin the lease, never silently read recycled memory).
  Tensor view;
  BufferArena arena;
  {
    ArenaScope scope(&arena);
    Tensor sum = tensor::Add(Tensor::Full({2, 3}, 1.0f),
                             Tensor::Full({2, 3}, 1.0f));
    view = tensor::Reshape(sum, {6});
    EXPECT_EQ(view.data(), sum.data());  // really a view
  }
  EXPECT_DEATH(view.data(), "outlived its arena generation");
}

TEST(ArenaScopeTest, CloneInsideScopeSurvivesReset) {
  Tensor kept;
  BufferArena arena;
  {
    ArenaScope scope(&arena);
    Tensor sum = tensor::Add(Tensor::Full({4}, 1.5f), Tensor::Full({4}, 2.0f));
    kept = sum.Clone();
  }
  // Clone deep-copied to owned storage while the lease was valid.
  EXPECT_EQ(kept.impl()->lease, nullptr);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(kept.data()[i], 3.5f);
}

TEST(ArenaScopeTest, NestedScopesRestorePrevious) {
  BufferArena outer_arena;
  BufferArena inner_arena;
  ArenaScope outer(&outer_arena);
  EXPECT_EQ(tensor::CurrentArena(), &outer_arena);
  {
    ArenaScope inner(&inner_arena);
    EXPECT_EQ(tensor::CurrentArena(), &inner_arena);
  }
  EXPECT_EQ(tensor::CurrentArena(), &outer_arena);
}

// -------------------------------------------------------------- GraphPlan --

// Builds a small pure-tensor program (no host stages) over an explicit
// rebindable input plus constant weights.
struct PureProgram {
  Tensor x;   // rebindable input
  Tensor w1;  // constants: storage retained by the plan
  Tensor w2;

  explicit PureProgram(util::Rng* rng)
      : x(testing::RandomTensor({6, 8}, rng)),
        w1(testing::RandomTensor({8, 16}, rng)),
        w2(testing::RandomTensor({16, 4}, rng)) {}

  std::vector<Tensor> Run() const {
    Tensor h = tensor::Tanh(tensor::MatMul(x, w1));
    Tensor y = tensor::Softmax(tensor::MatMul(h, w2));
    return {y, tensor::SumAxis(y, 1)};
  }

  std::vector<Tensor> RunOn(const Tensor& input) const {
    PureProgram copy = *this;
    copy.x = input;
    return copy.Run();
  }
};

TEST(GraphPlanTest, ReplayIsBitwiseIdenticalToEagerAcrossBackendsAndThreads) {
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  for (Backend backend : {Backend::kOptimized, Backend::kReference}) {
    BackendGuard bg(backend);
    util::Rng rng(91);
    PureProgram prog(&rng);
    std::vector<Tensor> captured;
    std::shared_ptr<GraphPlan> plan = GraphPlan::CaptureInference(
        [&prog]() { return prog.Run(); }, &captured, {prog.x});
    ASSERT_EQ(captured.size(), 2u);
    ASSERT_FALSE(plan->has_host_stages());

    for (int threads : {1, 2, 8}) {
      ctx.SetNumThreads(threads);
      ctx.SetParallelThreshold(1);
      Tensor fresh = testing::RandomTensor({6, 8}, &rng);
      tensor::NoGradGuard no_grad;
      std::vector<Tensor> eager = prog.RunOn(fresh);
      const std::vector<Tensor>& replayed = plan->Replay({fresh});
      ASSERT_EQ(replayed.size(), 2u);
      for (size_t o = 0; o < replayed.size(); ++o) {
        EXPECT_EQ(replayed[o].shape(), eager[o].shape());
        testing::ExpectUlpClose(
            replayed[o].vec(), eager[o].vec(), /*max_ulps=*/0,
            "replay output " + std::to_string(o) + " threads " +
                std::to_string(threads));
      }
    }
    EXPECT_GE(plan->replay_count(), 3);
  }
}

TEST(GraphPlanTest, MemoryPlanReusesRetiredBuffers) {
  // A deep elementwise chain: intermediates retire immediately, so the
  // liveness plan must ping-pong a couple of physical buffers instead of
  // keeping one per value. Captured unfused — this test pins the raw
  // liveness geometry; the optimizer's view of the same chain is covered by
  // the fusion tests.
  util::Rng rng(17);
  Tensor x = testing::RandomTensor({32, 32}, &rng);
  tensor::FusionScope no_fusion(false);
  std::shared_ptr<GraphPlan> plan = GraphPlan::CaptureInference(
      [&x]() {
        Tensor h = x;
        for (int i = 0; i < 8; ++i) h = tensor::Tanh(h);
        return std::vector<Tensor>{h};
      },
      nullptr, {x});
  tensor::MemoryPlanStats stats = plan->memory_stats();
  EXPECT_EQ(stats.num_nodes, 8);
  EXPECT_EQ(stats.num_values, 8);
  EXPECT_LT(stats.num_buffers, stats.num_values);
  EXPECT_LT(stats.peak_bytes, stats.requested_bytes);
  EXPECT_GT(stats.reuse_ratio, 0.0);
  // The plan must not let reuse corrupt the chain: replay still matches.
  std::vector<Tensor> eager_out;
  {
    tensor::NoGradGuard no_grad;
    Tensor h = x;
    for (int i = 0; i < 8; ++i) h = tensor::Tanh(h);
    eager_out.push_back(h);
  }
  testing::ExpectUlpClose(plan->Replay({x})[0].vec(), eager_out[0].vec(),
                          /*max_ulps=*/0, "deep chain replay");
}

TEST(GraphPlanTest, ReplayOnRejectsShapeMismatch) {
  util::Rng rng(23);
  PureProgram prog(&rng);
  std::shared_ptr<GraphPlan> plan =
      GraphPlan::CaptureInference([&prog]() { return prog.Run(); }, nullptr,
                                  {prog.x});
  Tensor wrong = testing::RandomTensor({5, 8}, &rng);
  EXPECT_DEATH(plan->Replay({wrong}), "");
  EXPECT_DEATH(plan->Replay({}), "");
}

TEST(GraphPlanTest, ConcurrentReplayOnSeparateBufferSets) {
  // Pure-tensor plans support concurrent replay when every thread brings
  // its own Buffers (the tsan preset hammers this harder in stress_test).
  ComputeConfigGuard guard;
  ComputeContext::Get().SetNumThreads(1);
  util::Rng rng(29);
  PureProgram prog(&rng);
  std::vector<Tensor> captured;
  std::shared_ptr<GraphPlan> plan = GraphPlan::CaptureInference(
      [&prog]() { return prog.Run(); }, &captured, {prog.x});
  ASSERT_FALSE(plan->has_host_stages());
  const std::vector<float> expected0 = captured[0].vec();
  const std::vector<float> expected1 = captured[1].vec();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&plan, &prog, &expected0, &expected1, &mismatches] {
      std::unique_ptr<GraphPlan::Buffers> buffers = plan->NewBuffers();
      for (int iter = 0; iter < 10; ++iter) {
        const std::vector<Tensor>& out =
            plan->ReplayOn(buffers.get(), {prog.x});
        if (out[0].vec() != expected0 || out[1].vec() != expected1) {
          mismatches++;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ----------------------------------------------------------- PlanOptimizer --

// A serving-shaped program with a long fusable elementwise tail: MatMul
// feeds a broadcast bias Add, then unary activations and scalar ops chained
// single-consumer. The optimizer must fuse the tail into few nodes while
// replay stays bitwise identical to eager.
struct FusableProgram {
  Tensor x;   // rebindable input {6, 16}
  Tensor w;   // {16, 12}
  Tensor bias;  // {12}: broadcast over rows
  Tensor gate;  // {6, 12}: same-shape elementwise operand

  explicit FusableProgram(util::Rng* rng)
      : x(testing::RandomTensor({6, 16}, rng)),
        w(testing::RandomTensor({16, 12}, rng)),
        bias(testing::RandomTensor({12}, rng)),
        gate(testing::RandomTensor({6, 12}, rng)) {}

  std::vector<Tensor> Run() const {
    Tensor h = tensor::MatMul(x, w);
    h = tensor::Add(h, bias);          // broadcast bias epilogue
    h = tensor::Tanh(h);
    h = tensor::Mul(h, gate);          // same-shape binary link
    h = tensor::MulScalar(h, 0.5f);
    h = tensor::Sub(bias, h);          // spine on the right
    h = tensor::Sigmoid(h);
    return {h};
  }

  std::vector<Tensor> RunOn(const Tensor& input) const {
    FusableProgram copy = *this;
    copy.x = input;
    return copy.Run();
  }
};

TEST(PlanFusionTest, FusedReplayBitwiseMatchesEagerEverywhere) {
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  for (tensor::CpuCapability cap : tensor::AvailableCpuCapabilities()) {
    tensor::CpuCapabilityScope cap_scope(cap);
    for (Backend backend : {Backend::kOptimized, Backend::kReference}) {
      BackendGuard bg(backend);
      util::Rng rng(131);
      FusableProgram prog(&rng);
      std::shared_ptr<GraphPlan> plan = GraphPlan::CaptureInference(
          [&prog]() { return prog.Run(); }, nullptr, {prog.x});

      tensor::MemoryPlanStats stats = plan->memory_stats();
      EXPECT_GE(stats.fused_nodes, 1);
      EXPECT_GE(stats.elided_values, 3);
      EXPECT_GT(stats.elided_bytes, 0);

      for (int threads : {1, 2, 8}) {
        ctx.SetNumThreads(threads);
        ctx.SetParallelThreshold(1);
        // Two replays per thread count: the second runs on the dirty
        // recycled slot buffers the first left behind.
        for (int round = 0; round < 2; ++round) {
          Tensor fresh = testing::RandomTensor({6, 16}, &rng);
          tensor::NoGradGuard no_grad;
          std::vector<Tensor> eager = prog.RunOn(fresh);
          const std::vector<Tensor>& replayed = plan->Replay({fresh});
          testing::ExpectUlpClose(replayed[0].vec(), eager[0].vec(),
                                  /*max_ulps=*/0,
                                  "fused replay threads " +
                                      std::to_string(threads));
        }
      }
    }
  }
}

TEST(PlanFusionTest, FusionShrinksNodeAndBufferCountsVsUnfused) {
  util::Rng rng(137);
  FusableProgram prog(&rng);
  std::shared_ptr<GraphPlan> fused;
  std::shared_ptr<GraphPlan> unfused;
  {
    tensor::FusionScope on(true);
    fused = GraphPlan::CaptureInference([&prog]() { return prog.Run(); },
                                        nullptr, {prog.x});
  }
  {
    tensor::FusionScope off(false);
    unfused = GraphPlan::CaptureInference([&prog]() { return prog.Run(); },
                                          nullptr, {prog.x});
  }
  tensor::MemoryPlanStats fs = fused->memory_stats();
  tensor::MemoryPlanStats us = unfused->memory_stats();
  EXPECT_EQ(us.fused_nodes, 0);
  EXPECT_EQ(us.elided_values, 0);
  EXPECT_LT(fs.num_nodes, us.num_nodes);
  EXPECT_LT(fs.num_values, us.num_values);
  EXPECT_LE(fs.peak_bytes, us.peak_bytes);
  // Both replay to identical bits.
  Tensor fresh = testing::RandomTensor({6, 16}, &rng);
  testing::ExpectUlpClose(fused->Replay({fresh})[0].vec(),
                          unfused->Replay({fresh})[0].vec(),
                          /*max_ulps=*/0, "fused vs unfused replay");
}

TEST(PlanFusionTest, FoldsIdentityAndScaleByOneNoOps) {
  // Reference-mode Reshape and inference Dropout record identity copies;
  // MulScalar by exactly 1.0 and add-0 on a sign-safe producer fold too.
  // The reference backend materializes all of them, so capture there.
  BackendGuard bg(Backend::kReference);
  util::Rng rng(139);
  Tensor x = testing::RandomTensor({4, 6}, &rng);
  util::Rng dropout_rng(7);
  std::shared_ptr<GraphPlan> plan = GraphPlan::CaptureInference(
      [&x, &dropout_rng]() {
        Tensor h = tensor::Relu(x);
        h = tensor::AddScalar(h, 0.0f);  // foldable: Relu never yields -0
        h = tensor::Dropout(h, 0.0f, &dropout_rng, /*training=*/true);
        h = tensor::Dropout(h, 0.3f, &dropout_rng, /*training=*/false);
        h = tensor::Reshape(h, {6, 4});
        h = tensor::Reshape(h, {24});   // chained reshape views
        h = tensor::MulScalar(h, 1.0f);
        return std::vector<Tensor>{tensor::Sigmoid(h)};
      },
      nullptr, {x});
  tensor::MemoryPlanStats stats = plan->memory_stats();
  EXPECT_GE(stats.folded_nodes, 5);
  // Replay matches eager bitwise (same backend, fresh input).
  Tensor fresh = testing::RandomTensor({4, 6}, &rng);
  std::vector<Tensor> eager;
  {
    tensor::NoGradGuard no_grad;
    util::Rng eager_rng(7);
    Tensor h = tensor::Relu(fresh);
    h = tensor::AddScalar(h, 0.0f);
    h = tensor::Dropout(h, 0.0f, &eager_rng, true);
    h = tensor::Dropout(h, 0.3f, &eager_rng, false);
    h = tensor::Reshape(h, {6, 4});
    h = tensor::Reshape(h, {24});
    h = tensor::MulScalar(h, 1.0f);
    eager.push_back(tensor::Sigmoid(h));
  }
  testing::ExpectUlpClose(plan->Replay({fresh})[0].vec(), eager[0].vec(),
                          /*max_ulps=*/0, "folded replay");
}

TEST(PlanFusionTest, AddZeroAfterTanhIsNotFolded) {
  // Tanh(-0) == -0, and -0 + 0.0f rounds to +0: folding would change bits.
  // The optimizer must keep the AddScalar node (it may still fuse it).
  BackendGuard bg(Backend::kReference);
  Tensor x = Tensor::FromVector({4}, {0.0f, -0.0f, -1.0f, 2.0f});
  std::shared_ptr<GraphPlan> plan = GraphPlan::CaptureInference(
      [&x]() {
        return std::vector<Tensor>{
            tensor::AddScalar(tensor::Tanh(x), 0.0f)};
      },
      nullptr, {x});
  EXPECT_EQ(plan->memory_stats().folded_nodes, 0);
  tensor::NoGradGuard no_grad;
  std::vector<float> eager = tensor::AddScalar(tensor::Tanh(x), 0.0f).vec();
  testing::ExpectUlpClose(plan->Replay({x})[0].vec(), eager,
                          /*max_ulps=*/0, "tanh add-0 replay");
}

TEST(PlanFusionTest, ValueWithTwoConsumersEndsTheChain) {
  // h feeds two consumers: it must stay materialized, and neither consumer
  // may absorb it. Both branches are single nodes, so nothing fuses at all.
  util::Rng rng(149);
  Tensor x = testing::RandomTensor({5, 7}, &rng);
  std::shared_ptr<GraphPlan> plan = GraphPlan::CaptureInference(
      [&x]() {
        Tensor h = tensor::Tanh(x);
        return std::vector<Tensor>{tensor::AddScalar(h, 1.0f),
                                   tensor::MulScalar(h, 2.0f)};
      },
      nullptr, {x});
  EXPECT_EQ(plan->memory_stats().fused_nodes, 0);
  tensor::NoGradGuard no_grad;
  Tensor h = tensor::Tanh(x);
  std::vector<float> e0 = tensor::AddScalar(h, 1.0f).vec();
  std::vector<float> e1 = tensor::MulScalar(h, 2.0f).vec();
  const std::vector<Tensor>& out = plan->Replay({x});
  testing::ExpectUlpClose(out[0].vec(), e0, 0, "two-consumer branch 0");
  testing::ExpectUlpClose(out[1].vec(), e1, 0, "two-consumer branch 1");
}

TEST(PlanFusionTest, DropoutRejectsPOne) {
  util::Rng rng(151);
  Tensor x = testing::RandomTensor({4}, &rng);
  EXPECT_DEATH(tensor::Dropout(x, 1.0f, &rng, /*training=*/true), "");
}

// Seeded differential fuzz: random fusable chains (unary activations,
// scalar ops, same-shape and broadcast binaries, occasional no-ops),
// captured fused and unfused, replayed twice (dirty recycled buffers) on
// fresh inputs — results must match bitwise on every backend, thread count
// and compiled capability tier.
TEST(PlanFusionTest, DifferentialFuzzFusedVsUnfusedBitwise) {
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  util::Rng rng(0xF05EDu);
  for (tensor::CpuCapability cap : tensor::AvailableCpuCapabilities()) {
    tensor::CpuCapabilityScope cap_scope(cap);
    for (Backend backend : {Backend::kOptimized, Backend::kReference}) {
      BackendGuard bg(backend);
      for (int iter = 0; iter < 6; ++iter) {
        const int64_t rows = rng.UniformInt(1, 7);
        const int64_t cols = rng.UniformInt(1, 33);  // exercises vector tails
        Tensor x = testing::RandomTensor({rows, cols}, &rng);
        Tensor row_operand = testing::RandomTensor({cols}, &rng);
        Tensor full_operand = testing::RandomTensor({rows, cols}, &rng);
        const int n_ops = static_cast<int>(rng.UniformInt(2, 20));
        std::vector<int> ops;
        for (int i = 0; i < n_ops; ++i) {
          ops.push_back(static_cast<int>(rng.UniformInt(0, 11)));
        }
        auto program = [&]() {
          Tensor h = x;
          for (int op : ops) {
            switch (op) {
              case 0: h = tensor::Relu(h); break;
              case 1: h = tensor::LeakyRelu(h, 0.01f); break;
              case 2: h = tensor::Sigmoid(h); break;
              case 3: h = tensor::Tanh(h); break;
              case 4: h = tensor::AddScalar(h, 0.25f); break;
              case 5: h = tensor::MulScalar(h, -0.5f); break;
              case 6: h = tensor::Add(h, row_operand); break;
              case 7: h = tensor::Mul(h, full_operand); break;
              case 8: h = tensor::Sub(row_operand, h); break;
              case 9: h = tensor::MulScalar(h, 1.0f); break;   // no-op
              case 10: h = tensor::AddScalar(h, 0.0f); break;  // maybe-fold
              default: h = tensor::Div(h, tensor::AddScalar(
                               tensor::Mul(h, h), 1.0f)); break;
            }
          }
          return std::vector<Tensor>{h};
        };
        std::shared_ptr<GraphPlan> fused;
        std::shared_ptr<GraphPlan> unfused;
        {
          tensor::FusionScope on(true);
          fused = GraphPlan::CaptureInference(program, nullptr, {x});
        }
        {
          tensor::FusionScope off(false);
          unfused = GraphPlan::CaptureInference(program, nullptr, {x});
        }
        for (int threads : {1, 2, 8}) {
          ctx.SetNumThreads(threads);
          ctx.SetParallelThreshold(1);
          for (int round = 0; round < 2; ++round) {
            Tensor fresh = testing::RandomTensor({rows, cols}, &rng);
            std::vector<float> f = fused->Replay({fresh})[0].vec();
            std::vector<float> u = unfused->Replay({fresh})[0].vec();
            testing::ExpectUlpClose(
                f, u, /*max_ulps=*/0,
                "fuzz iter " + std::to_string(iter) + " threads " +
                    std::to_string(threads) + " round " +
                    std::to_string(round));
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------- TrainStepPlan --

// Twin training loops over an embedding + projection: the eager tape path
// vs the captured TrainStepPlan replay. Pure function of its inputs, so the
// two must agree bit for bit on every loss and on the trained weights.
std::vector<float> RunTrainLoop(bool use_plan) {
  util::Rng rng(6402);
  Tensor table = testing::RandomTensor({10, 4}, &rng, true);
  Tensor w = testing::RandomTensor({4, 1}, &rng, true);
  optim::Adam opt({table, w}, 0.05);
  // Host-side state refreshed per step; the *objects* stay put so the
  // captured closures keep pointing at live data.
  std::vector<int64_t> indices(6, 0);
  auto program = [&table, &w, &indices]() {
    Tensor emb = tensor::EmbeddingLookup(table, indices, {6});
    Tensor h = tensor::MatMul(emb, w);
    return tensor::Sum(tensor::Mul(h, h));
  };
  std::unique_ptr<TrainStepPlan> plan;
  std::vector<float> out;
  for (int step = 0; step < 6; ++step) {
    for (int64_t& v : indices) v = rng.UniformInt(0, 9);
    float loss_value = 0.0f;
    if (use_plan) {
      if (plan == nullptr) {
        plan = TrainStepPlan::Capture(program);  // capture IS the eager run
      } else {
        plan->ReplayForward();
      }
      opt.ZeroGrad();
      plan->ReplayBackward();
      opt.ClipGradNorm(0.5);
      opt.Step();
      loss_value = plan->loss().item();
    } else {
      Tensor loss = program();
      opt.ZeroGrad();
      loss.Backward();
      opt.ClipGradNorm(0.5);
      opt.Step();
      loss_value = loss.item();
    }
    out.push_back(loss_value);
  }
  out.insert(out.end(), table.vec().begin(), table.vec().end());
  out.insert(out.end(), w.vec().begin(), w.vec().end());
  return out;
}

TEST(TrainStepPlanTest, ReplayMatchesEagerTrainingBitwise) {
  ComputeConfigGuard guard;
  ComputeContext& ctx = ComputeContext::Get();
  ctx.SetNumThreads(1);
  ctx.SetParallelThreshold(16384);
  const std::vector<float> oracle = RunTrainLoop(/*use_plan=*/false);
  for (int threads : {1, 2, 8}) {
    for (int64_t threshold : {int64_t{1}, int64_t{16384}}) {
      ctx.SetNumThreads(threads);
      ctx.SetParallelThreshold(threshold);
      const std::string tag = " [threads=" + std::to_string(threads) +
                              " threshold=" + std::to_string(threshold) + "]";
      testing::ExpectUlpClose(RunTrainLoop(true), oracle, /*max_ulps=*/0,
                              "TrainStepPlan/plan" + tag);
      testing::ExpectUlpClose(RunTrainLoop(false), oracle, /*max_ulps=*/0,
                              "TrainStepPlan/eager" + tag);
    }
  }
  {
    BackendGuard reference(Backend::kReference);
    ctx.SetNumThreads(1);
    ctx.SetParallelThreshold(16384);
    testing::ExpectUlpClose(RunTrainLoop(true), oracle, /*max_ulps=*/0,
                            "TrainStepPlan/plan reference backend");
  }
}

TEST(TrainStepPlanTest, CaptureRequiresScalarGradLoss) {
  Tensor a = Tensor::Full({3}, 1.0f, /*requires_grad=*/true);
  EXPECT_DEATH(TrainStepPlan::Capture([&a]() { return tensor::Neg(a); }),
               "scalar");
}

// ------------------------------------------------------ model and trainer --

struct Fixture {
  Fixture() : simulator(MakeConfig()), dataset(simulator.Generate()) {
    hsg = core::BuildHsgFromDataset(dataset, simulator.atlas());
    temporal = std::make_unique<data::TemporalFeatureIndex>(
        dataset, dataset.num_cities, 800);
  }
  static data::FliggyConfig MakeConfig() {
    data::FliggyConfig config;
    config.num_users = 120;
    config.num_cities = 25;
    config.seed = 31;
    return config;
  }
  data::FliggySimulator simulator;
  data::OdDataset dataset;
  std::unique_ptr<graph::HeterogeneousSpatialGraph> hsg;
  std::unique_ptr<data::TemporalFeatureIndex> temporal;
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

core::OdnetConfig SmallModelConfig() {
  core::OdnetConfig config;
  config.embed_dim = 8;
  config.num_heads = 2;
  config.expert_dim = 8;
  config.tower_hidden = 4;
  config.epochs = 2;
  config.batch_size = 48;
  config.seed = 77;
  return config;
}

TEST(PredictPlannedTest, MatchesPredictAndInvalidatesOnShapeChange) {
  // use_hsgc off: Predict is a pure function of the batch, so plan hits,
  // misses, and re-captures can all be compared against eager Predict on
  // the *same* model instance.
  Fixture& f = SharedFixture();
  core::OdnetConfig config = SmallModelConfig();
  config.use_hsgc = false;
  core::OdnetModel model(nullptr, f.dataset.num_users, f.dataset.num_cities,
                         config);
  data::BatchEncoder encoder(&f.dataset, f.temporal.get(),
                             data::SequenceSpec{config.t_long,
                                                config.t_short});
  data::OdBatch batch8 = encoder.EncodeJoint(f.dataset.train_samples, 0, 8);
  data::OdBatch batch8b = encoder.EncodeJoint(f.dataset.train_samples, 8, 16);
  data::OdBatch batch4 = encoder.EncodeJoint(f.dataset.train_samples, 16, 20);

  auto expect_equal = [](const std::pair<std::vector<double>,
                                         std::vector<double>>& a,
                         const std::pair<std::vector<double>,
                                         std::vector<double>>& b,
                         const std::string& tag) {
    ASSERT_EQ(a.first.size(), b.first.size()) << tag;
    for (size_t i = 0; i < a.first.size(); ++i) {
      EXPECT_EQ(a.first[i], b.first[i]) << tag << " p_o[" << i << "]";
      EXPECT_EQ(a.second[i], b.second[i]) << tag << " p_d[" << i << "]";
    }
  };

  expect_equal(model.PredictPlanned(batch8), model.Predict(batch8),
               "capture");  // miss: eager capture
  EXPECT_EQ(model.serving_plan_stats().captures, 1);
  EXPECT_EQ(model.serving_plan_stats().replays, 0);

  expect_equal(model.PredictPlanned(batch8b), model.Predict(batch8b),
               "replay");  // hit: same shape, fresh contents
  EXPECT_EQ(model.serving_plan_stats().captures, 1);
  EXPECT_EQ(model.serving_plan_stats().replays, 1);

  expect_equal(model.PredictPlanned(batch4), model.Predict(batch4),
               "shape change");  // miss: batch size changed -> new plan
  EXPECT_EQ(model.serving_plan_stats().captures, 2);

  expect_equal(model.PredictPlanned(batch8), model.Predict(batch8),
               "back to first shape");  // both plans stay cached
  EXPECT_EQ(model.serving_plan_stats().captures, 2);
  EXPECT_EQ(model.serving_plan_stats().replays, 2);

  // The serving plan reuses retired buffers.
  EXPECT_GT(model.serving_plan_stats().memory.reuse_ratio, 0.0);
  EXPECT_LT(model.serving_plan_stats().memory.peak_bytes,
            model.serving_plan_stats().memory.requested_bytes);

  model.InvalidateServingPlans();
  expect_equal(model.PredictPlanned(batch8), model.Predict(batch8),
               "after invalidation");
  EXPECT_EQ(model.serving_plan_stats().captures, 3);
}

TEST(PredictPlannedTest, RegistryCountersTrackHitMissRecapture) {
  // The plan-cache counters are observable through the process-global
  // telemetry registry (the struct fields above are per-model); the
  // counters are cumulative across tests, so assert on deltas.
  Fixture& f = SharedFixture();
  core::OdnetConfig config = SmallModelConfig();
  config.use_hsgc = false;
  core::OdnetModel model(nullptr, f.dataset.num_users, f.dataset.num_cities,
                         config);
  data::BatchEncoder encoder(&f.dataset, f.temporal.get(),
                             data::SequenceSpec{config.t_long,
                                                config.t_short});
  data::OdBatch batch8 = encoder.EncodeJoint(f.dataset.train_samples, 0, 8);
  data::OdBatch batch4 = encoder.EncodeJoint(f.dataset.train_samples, 8, 12);

  auto& reg = telemetry::TelemetryRegistry::Get();
  const int64_t hits0 = reg.CounterValue("serving.plan_cache.hits");
  const int64_t misses0 = reg.CounterValue("serving.plan_cache.misses");
  const int64_t recaps0 = reg.CounterValue("serving.plan_cache.recaptures");

  model.PredictPlanned(batch8);  // first shape: miss -> capture
  EXPECT_EQ(reg.CounterValue("serving.plan_cache.misses"), misses0 + 1);
  EXPECT_EQ(reg.CounterValue("serving.plan_cache.hits"), hits0);
  EXPECT_EQ(reg.CounterValue("serving.plan_cache.recaptures"), recaps0);

  model.PredictPlanned(batch8);  // same shape: hit -> replay
  EXPECT_EQ(reg.CounterValue("serving.plan_cache.hits"), hits0 + 1);
  EXPECT_EQ(reg.CounterValue("serving.plan_cache.misses"), misses0 + 1);

  model.PredictPlanned(batch4);  // shape change: a fresh miss, no recapture
  EXPECT_EQ(reg.CounterValue("serving.plan_cache.misses"), misses0 + 2);
  EXPECT_EQ(reg.CounterValue("serving.plan_cache.recaptures"), recaps0);

  model.InvalidateServingPlans();
  model.PredictPlanned(batch8);  // signature seen before: recapture
  EXPECT_EQ(reg.CounterValue("serving.plan_cache.recaptures"), recaps0 + 1);
  EXPECT_EQ(reg.CounterValue("serving.plan_cache.misses"), misses0 + 2);
  EXPECT_EQ(reg.CounterValue("serving.plan_cache.hits"), hits0 + 1);
  EXPECT_EQ(model.serving_plan_stats().recaptures, 1);

  // The memory-plan gauges reflect the most recent capture, and the
  // registry snapshot carries all three counters.
  EXPECT_GT(reg.GetGauge("serving.plan_cache.memory.num_nodes")->Value(), 0);
  const std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("serving.plan_cache.hits"), std::string::npos);
  EXPECT_NE(json.find("serving.plan_cache.misses"), std::string::npos);
  EXPECT_NE(json.find("serving.plan_cache.recaptures"), std::string::npos);
}

TEST(PredictPlannedTest, SequenceLengthChangeRecaptures) {
  Fixture& f = SharedFixture();
  core::OdnetConfig config = SmallModelConfig();
  config.use_hsgc = false;
  core::OdnetModel model(nullptr, f.dataset.num_users, f.dataset.num_cities,
                         config);
  data::BatchEncoder enc_a(&f.dataset, f.temporal.get(),
                           data::SequenceSpec{config.t_long, config.t_short});
  data::BatchEncoder enc_b(&f.dataset, f.temporal.get(),
                           data::SequenceSpec{config.t_long + 2,
                                              config.t_short + 1});
  data::OdBatch a = enc_a.EncodeJoint(f.dataset.train_samples, 0, 8);
  data::OdBatch b = enc_b.EncodeJoint(f.dataset.train_samples, 0, 8);
  model.PredictPlanned(a);
  EXPECT_EQ(model.serving_plan_stats().captures, 1);
  // Same batch size but different (t_long, t_short): distinct signature.
  auto planned = model.PredictPlanned(b);
  EXPECT_EQ(model.serving_plan_stats().captures, 2);
  auto eager = model.Predict(b);
  for (size_t i = 0; i < planned.first.size(); ++i) {
    EXPECT_EQ(planned.first[i], eager.first[i]);
    EXPECT_EQ(planned.second[i], eager.second[i]);
  }
}

TEST(PredictPlannedTest, HsgcTwinModelsAgreeBitwise) {
  // With the HSGC, every forward advances the neighbor-sampling RNG, so the
  // comparison runs twin models (identical seed): one serves eagerly, one
  // through the plan cache. Replay re-runs the recorded sampling stages,
  // advancing the twin's RNG exactly as eager evaluation would.
  Fixture& f = SharedFixture();
  core::OdnetConfig config = SmallModelConfig();
  core::OdnetModel eager_model(f.hsg.get(), f.dataset.num_users,
                               f.dataset.num_cities, config);
  core::OdnetModel planned_model(f.hsg.get(), f.dataset.num_users,
                                 f.dataset.num_cities, config);
  data::BatchEncoder encoder(&f.dataset, f.temporal.get(),
                             data::SequenceSpec{config.t_long,
                                                config.t_short});
  for (size_t start : {size_t{0}, size_t{8}, size_t{16}}) {
    data::OdBatch batch =
        encoder.EncodeJoint(f.dataset.train_samples, start, start + 8);
    auto eager = eager_model.Predict(batch);
    auto planned = planned_model.PredictPlanned(batch);
    ASSERT_EQ(eager.first.size(), planned.first.size());
    for (size_t i = 0; i < eager.first.size(); ++i) {
      EXPECT_EQ(eager.first[i], planned.first[i]) << "batch at " << start;
      EXPECT_EQ(eager.second[i], planned.second[i]) << "batch at " << start;
    }
  }
  EXPECT_EQ(planned_model.serving_plan_stats().captures, 1);
  EXPECT_EQ(planned_model.serving_plan_stats().replays, 2);
}

// Trains twin models (identical seed, identical batches) with the captured
// train-step plan on vs off and compares the full trained parameter state
// bitwise. Covers the ragged tail batch (second shape signature) and both
// sparse-update modes (the mode is part of the plan signature).
void ExpectPlannedTrainingMatchesEager(const std::string& sparse_mode,
                                       bool use_hsgc) {
  Fixture& f = SharedFixture();
  core::OdnetConfig config = SmallModelConfig();
  config.use_hsgc = use_hsgc;
  config.sparse_embedding_updates = sparse_mode;
  const graph::HeterogeneousSpatialGraph* hsg =
      use_hsgc ? f.hsg.get() : nullptr;

  config.capture_train_plan = false;
  core::OdnetModel eager_model(hsg, f.dataset.num_users, f.dataset.num_cities,
                               config);
  core::OdnetTrainer eager_trainer(&eager_model, &f.dataset, f.temporal.get());
  core::TrainStats eager_stats = eager_trainer.Train();

  config.capture_train_plan = true;
  core::OdnetModel plan_model(hsg, f.dataset.num_users, f.dataset.num_cities,
                              config);
  core::OdnetTrainer plan_trainer(&plan_model, &f.dataset, f.temporal.get());
  core::TrainStats plan_stats = plan_trainer.Train();

  EXPECT_EQ(plan_stats.steps, eager_stats.steps);
  EXPECT_EQ(plan_stats.first_epoch_loss, eager_stats.first_epoch_loss);
  EXPECT_EQ(plan_stats.final_epoch_loss, eager_stats.final_epoch_loss);

  auto eager_params = eager_model.NamedParameters();
  auto plan_params = plan_model.NamedParameters();
  ASSERT_EQ(eager_params.size(), plan_params.size());
  for (size_t p = 0; p < eager_params.size(); ++p) {
    EXPECT_EQ(eager_params[p].first, plan_params[p].first);
    testing::ExpectUlpClose(plan_params[p].second.vec(),
                            eager_params[p].second.vec(), /*max_ulps=*/0,
                            "param " + eager_params[p].first + " [" +
                                sparse_mode + "]");
  }
}

TEST(TrainerPlanTest, CapturedStepMatchesEagerDenseEquivalent) {
  ExpectPlannedTrainingMatchesEager("dense-equivalent", /*use_hsgc=*/false);
}

TEST(TrainerPlanTest, CapturedStepMatchesEagerLazySparse) {
  ExpectPlannedTrainingMatchesEager("lazy", /*use_hsgc=*/false);
}

TEST(TrainerPlanTest, CapturedStepMatchesEagerWithHsgc) {
  ExpectPlannedTrainingMatchesEager("dense-equivalent", /*use_hsgc=*/true);
}

}  // namespace
}  // namespace odnet
